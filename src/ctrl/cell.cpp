#include "ctrl/cell.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/objective.hpp"
#include "util/assert.hpp"

namespace scalpel {

namespace {

bool same_device_decision(const DeviceDecision& a, const DeviceDecision& b) {
  if (a.plan.device_only != b.plan.device_only ||
      a.plan.quantize_upload != b.plan.quantize_upload ||
      a.plan.partition_after != b.plan.partition_after ||
      a.plan.policy.exits.size() != b.plan.policy.exits.size() ||
      a.server != b.server || a.compute_share != b.compute_share ||
      a.bandwidth != b.bandwidth) {
    return false;
  }
  for (std::size_t i = 0; i < a.plan.policy.exits.size(); ++i) {
    if (a.plan.policy.exits[i].candidate != b.plan.policy.exits[i].candidate ||
        a.plan.policy.exits[i].theta != b.plan.policy.exits[i].theta) {
      return false;
    }
  }
  return true;
}

}  // namespace

CellController::CellController(const ProblemInstance& global, CellId cell,
                               CellControllerOptions opts,
                               DecisionAuditLog* audit)
    : global_(&global), cell_(cell), opts_(std::move(opts)), audit_(audit) {
  const auto& topo = global_->topology();
  SCALPEL_REQUIRE(cell >= 0 &&
                      static_cast<std::size_t>(cell) < topo.cells().size(),
                  "cell controller references missing cell");
  members_ = topo.devices_in_cell(cell_);
  num_servers_ = topo.servers().size();
  const double equal = 1.0 / static_cast<double>(topo.cells().size());
  slice_.assign(num_servers_, equal);
  observed_bw_ = topo.cell(cell_).bandwidth;
}

std::string CellController::tag() const {
  return "cell " + std::to_string(cell_) + ": ";
}

double CellController::slice_mean() const {
  if (slice_.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : slice_) sum += v;
  return sum / static_cast<double>(slice_.size());
}

Decision CellController::run_solver(const ProblemInstance& sub) const {
  if (opts_.solver) return opts_.solver(sub, opts_.joint);
  return JointOptimizer(opts_.joint).optimize(sub);
}

void CellController::receive(const CtrlMessage& msg, double now) {
  if (msg.from != 0) return;
  last_coord_seen_ = now;
  if (autonomous_) {
    autonomous_ = false;
    ++rejoins_;
    if (audit_ != nullptr) {
      AuditRecord r;
      r.cause = AuditCause::kRejoin;
      r.detail = tag() + "coordinator back (" + ctrl_msg_name(msg.type) +
                 ", epoch " + std::to_string(msg.epoch) + ")";
      audit_->append(std::move(r));
    }
  }
  if (msg.type != CtrlMsgType::kSliceGrant) {
    // A heartbeat carrying the adopted epoch confirms the slice matrix has
    // not moved since our grant: re-anchor price freshness to it. A
    // converged coordinator stops granting, so without this every cell
    // would drift into permanent staleness on a perfectly healthy fabric.
    // A heartbeat with a *newer* epoch means we missed a grant — the view
    // really is stale, and the coordinator's anti-entropy re-grant (keyed
    // off our load-report epoch echo) is what repairs it.
    if (msg.epoch == adopted_epoch_) {
      granted_at_ = std::max(granted_at_, msg.sent_at);
      if (stale_ && now - granted_at_ <= opts_.fresh_for) {
        stale_ = false;
        pending_solve_ = true;  // restore the undiscounted slice
      }
    }
    return;
  }
  if (msg.epoch <= adopted_epoch_) {
    // Split-brain / reorder guard: a grant that doesn't outrank the adopted
    // one is discarded — a delayed pre-crash grant can never roll the cell
    // back behind a post-restart coordinator.
    ++epochs_rejected_;
    if (tracer_ != nullptr) {
      tracer_->record(ctrl_span_of(msg, now, CtrlSpanEvent::kRejectedStale));
    }
    if (audit_ != nullptr) {
      AuditRecord r;
      r.cause = AuditCause::kEpochRejected;
      r.detail = tag() + "grant epoch " + std::to_string(msg.epoch) +
                 " <= adopted " + std::to_string(adopted_epoch_);
      audit_->append(std::move(r));
    }
    return;
  }
  SCALPEL_REQUIRE(msg.payload.size() == num_servers_,
                  "slice grant arity mismatch");
  double max_delta = 0.0;
  for (std::size_t s = 0; s < num_servers_; ++s) {
    max_delta = std::max(max_delta, std::abs(msg.payload[s] - slice_[s]));
  }
  slice_ = msg.payload;
  adopted_epoch_ = msg.epoch;
  ++adoptions_;
  if (tracer_ != nullptr) {
    tracer_->record(ctrl_span_of(msg, now, CtrlSpanEvent::kAdopted));
  }
  // Price age counts from when the coordinator computed the grant, so
  // fabric delay eats into freshness — a slow fabric degrades gracefully
  // into the stale-discount regime instead of pretending to be current.
  granted_at_ = msg.sent_at;
  const bool was_stale = stale_;
  stale_ = false;
  if (was_stale || max_delta > opts_.slice_hysteresis) pending_solve_ = true;
  append_log();
}

bool CellController::repair_local(const std::vector<bool>& server_alive) {
  bool changed = false;
  for (auto& dd : local_) {
    if (dd.plan.device_only) continue;
    const bool usable =
        dd.server >= 0 && static_cast<std::size_t>(dd.server) < num_servers_ &&
        server_alive[static_cast<std::size_t>(dd.server)] &&
        slice_[static_cast<std::size_t>(dd.server)] > 1e-9;
    if (usable) continue;
    dd.plan.device_only = true;
    dd.server = -1;
    dd.compute_share = 0.0;
    dd.bandwidth = 0.0;
    changed = true;
  }
  return changed;
}

bool CellController::local_solve(double now, AuditCause cause,
                                 std::string detail) {
  (void)now;
  ++local_solves_;
  const auto& topo = global_->topology();
  const double discount = stale_ ? opts_.stale_discount : 1.0;
  std::vector<double> usable(num_servers_, 0.0);
  for (std::size_t s = 0; s < num_servers_; ++s) {
    usable[s] = slice_[s] * discount;
  }
  const std::vector<DeviceDecision> previous = local_;
  const bool had_plan = has_plan_;

  // Live servers with a usable slice, compacted into the sub-topology.
  std::vector<ServerId> live_ids;
  ClusterTopology reduced;
  Cell c = topo.cell(cell_);
  c.bandwidth = observed_bw_;
  reduced.add_cell(c);
  for (DeviceId d : members_) {
    Device dev = topo.device(d);
    dev.cell = 0;
    reduced.add_device(dev);
  }
  for (const auto& s : topo.servers()) {
    const auto si = static_cast<std::size_t>(s.id);
    if (!solved_alive_.empty() && !solved_alive_[si]) continue;
    if (usable[si] <= 1e-9) continue;
    EdgeServer scaled = s;
    scaled.compute = s.compute.scaled(std::min(1.0, usable[si]));
    reduced.add_server(scaled);
    live_ids.push_back(s.id);
  }

  auto adopt = [&](std::vector<DeviceDecision> fresh, AuditCause why,
                   std::string why_detail) {
    local_ = std::move(fresh);
    has_plan_ = true;
    solved_bw_ = observed_bw_;
    solved_slice_ = slice_;
    append_log();
    bool changed = !had_plan || local_.size() != previous.size();
    if (!changed) {
      for (std::size_t i = 0; i < local_.size(); ++i) {
        if (!same_device_decision(local_[i], previous[i])) {
          changed = true;
          break;
        }
      }
    }
    if (audit_ != nullptr && changed) {
      std::size_t offload = 0;
      for (const auto& dd : local_) {
        if (!dd.plan.device_only) ++offload;
      }
      AuditRecord r;
      r.cause = why;
      r.detail = tag() + std::move(why_detail);
      char buf[64];
      std::snprintf(buf, sizeof(buf), "offload=%zu/%zu epoch=%llu", offload,
                    local_.size(),
                    static_cast<unsigned long long>(adopted_epoch_));
      r.plan_after = buf;
      audit_->append(std::move(r));
    }
    return changed;
  };

  if (live_ids.empty()) {
    // No live server with a usable slice: the whole cell runs device-only.
    std::vector<DeviceDecision> down(members_.size());
    for (auto& dd : down) dd.plan.device_only = true;
    return adopt(std::move(down), cause, detail + "; no usable server");
  }

  const ProblemInstance sub(reduced);
  failover::GuardedOutcome outcome = failover::guarded_attempt(
      sub, /*alive=*/{}, opts_.guard, [&] { return run_solver(sub); });

  if (outcome.ok) {
    // Map the sub-space decision back to global ids and global share space.
    // Local share sums are clamped to exactly 1 (validation allows a few
    // percent of slack that the global evaluator does not), and bandwidth
    // sums to the observed uplink, so the merged plan can never trip the
    // global capacity checks.
    std::vector<double> share_sum(live_ids.size(), 0.0);
    double bw_sum = 0.0;
    for (const auto& dd : outcome.decision.per_device) {
      if (dd.plan.device_only) continue;
      share_sum[static_cast<std::size_t>(dd.server)] += dd.compute_share;
      bw_sum += dd.bandwidth;
    }
    const double bw_scale =
        bw_sum > observed_bw_ ? observed_bw_ / bw_sum : 1.0;
    std::vector<DeviceDecision> fresh(members_.size());
    for (std::size_t j = 0; j < members_.size(); ++j) {
      DeviceDecision dd = outcome.decision.per_device[j];
      if (dd.plan.device_only) {
        fresh[j].plan = dd.plan;
        continue;
      }
      const auto local_server = static_cast<std::size_t>(dd.server);
      const double sigma_scale =
          share_sum[local_server] > 1.0 ? 1.0 / share_sum[local_server] : 1.0;
      dd.server = live_ids[local_server];
      dd.compute_share = dd.compute_share * sigma_scale *
                         std::min(1.0, usable[static_cast<std::size_t>(
                                           dd.server)]);
      dd.bandwidth *= bw_scale;
      fresh[j] = std::move(dd);
    }
    return adopt(std::move(fresh), cause, std::move(detail));
  }

  // Per-cell fallback chain: audit the failure, then keep the last-good
  // local plan (repaired so no member points at a dead or sliceless
  // server), else degrade the cell to device-only. Either way the cell's
  // devices stay routable.
  ++fallbacks_;
  if (audit_ != nullptr) {
    AuditRecord r;
    r.cause = outcome.fail_cause;
    r.detail = tag() + outcome.fail_detail;
    audit_->append(std::move(r));
  }
  if (had_plan) {
    const bool repaired = repair_local(
        solved_alive_.empty() ? std::vector<bool>(num_servers_, true)
                              : solved_alive_);
    return adopt(std::move(local_), AuditCause::kFallbackApplied,
                 repaired ? "kept last-good plan, dead targets device-only"
                          : "kept last-good plan");
  }
  std::vector<DeviceDecision> down(members_.size());
  for (auto& dd : down) dd.plan.device_only = true;
  adopt(std::move(down), AuditCause::kFallbackApplied,
        "degraded cell to device-only");
  return true;
}

bool CellController::tick(double now, double cell_bandwidth,
                          const std::vector<bool>& server_alive,
                          ControlFabric& fabric) {
  observed_bw_ = cell_bandwidth;

  if (!autonomous_ && now - last_coord_seen_ > opts_.heartbeat_timeout) {
    autonomous_ = true;
    ++coordinator_losses_;
    if (audit_ != nullptr) {
      AuditRecord r;
      r.cause = AuditCause::kCoordinatorLost;
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "no coordinator message for %.1fs (timeout %.1fs)",
                    now - last_coord_seen_, opts_.heartbeat_timeout);
      r.detail = tag() + buf;
      audit_->append(std::move(r));
    }
  }
  if (!stale_ && now - granted_at_ > opts_.fresh_for) {
    stale_ = true;
    ++stale_transitions_;
    pending_solve_ = true;
    if (audit_ != nullptr) {
      AuditRecord r;
      r.cause = AuditCause::kStalePrice;
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "grant epoch %llu age %.1fs > %.1fs; usable slice x%.2f",
                    static_cast<unsigned long long>(adopted_epoch_),
                    now - granted_at_, opts_.fresh_for, opts_.stale_discount);
      r.detail = tag() + buf;
      audit_->append(std::move(r));
    }
  }

  const bool liveness_flip =
      !solved_alive_.empty() && server_alive != solved_alive_;
  std::string detail;
  if (liveness_flip) {
    pending_solve_ = true;
    for (std::size_t s = 0; s < server_alive.size(); ++s) {
      if (server_alive[s] == solved_alive_[s]) continue;
      if (!detail.empty()) detail += ", ";
      detail +=
          "server " + std::to_string(s) + (server_alive[s] ? " up" : " down");
    }
  } else if (has_plan_ && solved_bw_ > 0.0 &&
             std::abs(observed_bw_ / solved_bw_ - 1.0) >
                 opts_.bandwidth_hysteresis) {
    pending_solve_ = true;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "uplink %+.0f%%",
                  (observed_bw_ / solved_bw_ - 1.0) * 100.0);
    detail = buf;
  }
  if (!has_plan_) pending_solve_ = true;

  bool changed = false;
  if (pending_solve_) {
    pending_solve_ = false;
    const AuditCause cause =
        !has_plan_    ? AuditCause::kInitialSolve
        : liveness_flip ? AuditCause::kFailover
        : autonomous_   ? AuditCause::kLocalAutonomy
                        : AuditCause::kResolve;
    if (detail.empty()) {
      detail = !has_plan_    ? "first local solve"
               : autonomous_ ? "validated local plan while partitioned"
               : stale_      ? "discounted stale slice"
                             : "slice/conditions moved";
    }
    solved_alive_ = server_alive;
    changed = local_solve(now, cause, std::move(detail));
  } else {
    solved_alive_ = server_alive;
  }

  if (now >= next_report_) {
    next_report_ = now + opts_.report_interval;
    CtrlMessage m;
    m.type = CtrlMsgType::kLoadReport;
    m.from = 1 + static_cast<int>(cell_);
    m.to = 0;
    m.corr = (static_cast<std::uint64_t>(1 + cell_) << 48) | ++corr_counter_;
    m.epoch = adopted_epoch_;
    m.payload.assign(num_servers_, 0.0);
    for (const auto& dd : local_) {
      if (dd.plan.device_only) continue;
      m.payload[static_cast<std::size_t>(dd.server)] += dd.compute_share;
    }
    fabric.send(std::move(m), now);
  }
  return changed;
}

void CellController::append_log() {
  LogEntry e;
  e.epoch = adopted_epoch_;
  e.slice = slice_;
  e.granted_at = granted_at_;
  e.local = local_;
  e.has_plan = has_plan_;
  log_.push_back(std::move(e));
}

void CellController::crash() {
  const double equal =
      1.0 / static_cast<double>(global_->topology().cells().size());
  slice_.assign(num_servers_, equal);
  adopted_epoch_ = 0;
  granted_at_ = 0.0;
  last_coord_seen_ = 0.0;
  autonomous_ = false;
  stale_ = false;
  has_plan_ = false;
  local_.clear();
  solved_bw_ = 0.0;
  solved_slice_.clear();
  solved_alive_.clear();
  next_report_ = 0.0;
  pending_solve_ = false;
}

void CellController::restart(double now) {
  ++restarts_;
  if (!log_.empty()) {
    const LogEntry& e = log_.back();
    adopted_epoch_ = e.epoch;
    slice_ = e.slice;
    granted_at_ = e.granted_at;
    local_ = e.local;
    has_plan_ = e.has_plan;
  }
  // Fresh grace windows: a restarted controller must re-observe silence for
  // a full timeout before declaring the coordinator lost, and re-anchors
  // its report cadence at the restart time.
  last_coord_seen_ = now;
  next_report_ = now;
  pending_solve_ = !has_plan_;
  if (audit_ != nullptr) {
    AuditRecord r;
    r.cause = AuditCause::kFailover;
    r.detail = tag() + "controller restart, replayed epoch " +
               std::to_string(adopted_epoch_) + " from " +
               std::to_string(log_.size()) + " log entries";
    audit_->append(std::move(r));
  }
}

}  // namespace scalpel
