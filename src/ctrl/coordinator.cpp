#include "ctrl/coordinator.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace scalpel {

namespace {

std::vector<std::vector<double>> equal_slices(std::size_t num_cells,
                                              std::size_t num_servers) {
  return std::vector<std::vector<double>>(
      num_cells,
      std::vector<double>(num_servers, 1.0 / static_cast<double>(num_cells)));
}

}  // namespace

GlobalCoordinator::GlobalCoordinator(std::size_t num_cells,
                                     std::size_t num_servers,
                                     CoordinatorOptions opts)
    : opts_(opts), num_cells_(num_cells), num_servers_(num_servers) {
  SCALPEL_REQUIRE(num_cells >= 1 && num_servers >= 1,
                  "coordinator needs at least one cell and one server");
  SCALPEL_REQUIRE(opts_.alpha > 0.0 && opts_.alpha <= 1.0,
                  "coordinator alpha must be in (0, 1]");
  SCALPEL_REQUIRE(opts_.min_slice >= 0.0 &&
                      opts_.min_slice * static_cast<double>(num_cells) < 1.0,
                  "min_slice leaves no capacity to allocate");
  phi_ = equal_slices(num_cells_, num_servers_);
  demand_.assign(num_cells_, std::vector<double>(num_servers_, 0.0));
  has_demand_.assign(num_cells_, false);
  lagging_.assign(num_cells_, false);
  grant_corr_.assign(num_cells_, 0);
}

void GlobalCoordinator::receive(const CtrlMessage& msg) {
  if (msg.type != CtrlMsgType::kLoadReport) return;
  const std::size_t cell = static_cast<std::size_t>(msg.from) - 1;
  if (cell >= num_cells_ || msg.payload.size() != num_servers_) return;
  demand_[cell] = msg.payload;
  has_demand_[cell] = true;
  // Anti-entropy: the report echoes the cell's adopted epoch. A cell behind
  // the current epoch missed a grant (dropped, or wiped by its own crash);
  // since grants only flow when the matrix moves, that loss would otherwise
  // be permanent. Queue a targeted re-grant for the next tick.
  if (msg.epoch < epoch_) lagging_[cell] = true;
}

void GlobalCoordinator::send_grants(double now, ControlFabric& fabric) {
  for (std::size_t k = 0; k < num_cells_; ++k) {
    CtrlMessage m;
    m.type = CtrlMsgType::kSliceGrant;
    m.from = 0;
    m.to = 1 + static_cast<int>(k);
    m.corr = ++corr_counter_;  // endpoint 0 => top 16 bits stay zero
    m.epoch = epoch_;
    m.payload = phi_[k];
    grant_corr_[k] = m.corr;  // re-grants continue this causal chain
    fabric.send(std::move(m), now);
  }
}

void GlobalCoordinator::tick(double now, ControlFabric& fabric) {
  bool granted_all = false;
  if (now >= next_realloc_) {
    next_realloc_ = now + opts_.realloc_interval;
    const bool any_demand =
        std::any_of(has_demand_.begin(), has_demand_.end(),
                    [](bool b) { return b; });
    double max_delta = 0.0;
    if (any_demand) {
      // Damped proportional tatonnement, one server column at a time:
      // target_k = floor + residual * w_k / sum(w) with the min_slice floor
      // built into the target (residual = 1 - cells * floor), then
      // phi' = (1-a) phi + a target. Folding the floor in keeps the target
      // column summing to exactly 1, so the clamp and the renormalization
      // below never bind at the fixed point — a post-hoc floor would
      // inflate the column every round and leave a permanent limit cycle of
      // amplitude ~floor/2 instead of converging. With static reports the
      // target is a constant and the distance to it contracts by exactly
      // (1 - alpha) per round.
      const double residual =
          1.0 - opts_.min_slice * static_cast<double>(num_cells_);
      for (std::size_t s = 0; s < num_servers_; ++s) {
        double total = 0.0;
        for (std::size_t k = 0; k < num_cells_; ++k) {
          if (has_demand_[k]) total += demand_[k][s];
        }
        double col_sum = 0.0;
        for (std::size_t k = 0; k < num_cells_; ++k) {
          // A cell that never reported keeps its slice (it may just be
          // partitioned — reclaiming its capacity is the *demand* signal's
          // job, not the fabric's).
          const double target =
              (total > 1e-12 && has_demand_[k])
                  ? opts_.min_slice + residual * demand_[k][s] / total
                  : phi_[k][s];
          double next = (1.0 - opts_.alpha) * phi_[k][s] +
                        opts_.alpha * target;
          next = std::max(next, opts_.min_slice);
          max_delta = std::max(max_delta, std::abs(next - phi_[k][s]));
          phi_[k][s] = next;
          col_sum += next;
        }
        if (col_sum > 1.0) {
          for (std::size_t k = 0; k < num_cells_; ++k) phi_[k][s] /= col_sum;
        }
      }
    }
    last_max_delta_ = max_delta;
    // First round always grants (cells start on an assumed equal split and
    // need an epoch > 0 to anchor staleness); afterwards grants flow only
    // while the matrix is still moving.
    if (epoch_ == 0 || max_delta > opts_.converge_eps) {
      converged_ = false;
      ++epoch_;
      ++realloc_rounds_;
      log_.push_back(LogEntry{epoch_, phi_});
      send_grants(now, fabric);
      granted_all = true;
    } else {
      converged_ = true;
    }
  }
  // Targeted re-grants for cells whose reports echoed an older epoch; a
  // full grant round this tick already covered them.
  for (std::size_t k = 0; k < num_cells_; ++k) {
    if (!lagging_[k]) continue;
    lagging_[k] = false;
    if (granted_all || epoch_ == 0) continue;
    CtrlMessage m;
    m.type = CtrlMsgType::kSliceGrant;
    m.from = 0;
    m.to = 1 + static_cast<int>(k);
    // Reuse the original grant's correlation id: mint -> drop -> re-grant ->
    // adoption reads as one chain on a single id in the span timeline.
    m.corr = grant_corr_[k];
    m.epoch = epoch_;
    m.payload = phi_[k];
    ++regrants_;
    if (tracer_ != nullptr) {
      tracer_->record(ctrl_span_of(m, now, CtrlSpanEvent::kRegrant));
    }
    fabric.send(std::move(m), now);
  }
  if (now >= next_heartbeat_) {
    next_heartbeat_ = now + opts_.heartbeat_interval;
    for (std::size_t k = 0; k < num_cells_; ++k) {
      CtrlMessage m;
      m.type = CtrlMsgType::kHeartbeat;
      m.from = 0;
      m.to = 1 + static_cast<int>(k);
      m.corr = ++corr_counter_;
      m.epoch = epoch_;
      fabric.send(std::move(m), now);
    }
  }
}

void GlobalCoordinator::crash() {
  phi_ = equal_slices(num_cells_, num_servers_);
  demand_.assign(num_cells_, std::vector<double>(num_servers_, 0.0));
  has_demand_.assign(num_cells_, false);
  lagging_.assign(num_cells_, false);
  next_realloc_ = 0.0;
  next_heartbeat_ = 0.0;
  converged_ = false;
  last_max_delta_ = 0.0;
  epoch_ = 0;
}

void GlobalCoordinator::restart(double now) {
  if (!log_.empty()) {
    // Replay: the last entry wins (the log is append-only, entries are
    // complete snapshots). Epochs resume past every number ever issued, so
    // grants sent before the crash can never outrank grants sent after —
    // the split-brain guard needs no cell-side cooperation.
    epoch_ = log_.back().epoch;
    phi_ = log_.back().phi;
  }
  next_realloc_ = now + opts_.realloc_interval;
  next_heartbeat_ = now;  // announce liveness immediately
}

}  // namespace scalpel
