#include "ctrl/fabric.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace scalpel {

const char* ctrl_msg_name(CtrlMsgType type) {
  switch (type) {
    case CtrlMsgType::kLoadReport: return "load_report";
    case CtrlMsgType::kSliceGrant: return "slice_grant";
    case CtrlMsgType::kHeartbeat: return "heartbeat";
  }
  return "unknown";
}

namespace {
// "CTRLFABR" — dedicated stream tag so fabric draws can never collide with
// the telemetry channel's or the workload's substreams.
constexpr std::uint64_t kFabricStreamTag = 0x4354524c46414252ull;
}  // namespace

CtrlSpan ctrl_span_of(const CtrlMessage& msg, double time,
                      CtrlSpanEvent event) {
  CtrlSpan sp;
  sp.time = time;
  sp.corr = msg.corr;
  sp.epoch = msg.epoch;
  if (!msg.payload.empty()) {
    double sum = 0.0;
    for (const double v : msg.payload) sum += v;
    sp.price = sum / static_cast<double>(msg.payload.size());
  }
  sp.from = msg.from;
  sp.to = msg.to;
  sp.event = event;
  sp.msg = static_cast<std::uint8_t>(msg.type);
  return sp;
}

ControlFabric::ControlFabric(ControlFabricOptions opts,
                             std::size_t num_endpoints, std::uint64_t seed)
    : opts_(opts), num_endpoints_(num_endpoints) {
  SCALPEL_REQUIRE(num_endpoints >= 2,
                  "control fabric needs a coordinator and at least one cell");
  SCALPEL_REQUIRE(opts_.delay >= 0.0 && opts_.jitter >= 0.0,
                  "fabric delay and jitter must be non-negative");
  SCALPEL_REQUIRE(opts_.drop_prob >= 0.0 && opts_.drop_prob < 1.0,
                  "fabric drop probability must be in [0, 1)");
  const Rng base(Rng::substream_seed(seed, kFabricStreamTag));
  link_rng_.reserve(num_endpoints * num_endpoints);
  for (std::size_t l = 0; l < num_endpoints * num_endpoints; ++l) {
    link_rng_.push_back(base.substream(l));
  }
}

void ControlFabric::send(CtrlMessage msg, double now) {
  SCALPEL_REQUIRE(msg.from >= 0 &&
                      static_cast<std::size_t>(msg.from) < num_endpoints_ &&
                      msg.to >= 0 &&
                      static_cast<std::size_t>(msg.to) < num_endpoints_ &&
                      msg.from != msg.to,
                  "control message endpoints out of range");
  Rng& rng = link_rng_[static_cast<std::size_t>(msg.from) * num_endpoints_ +
                       static_cast<std::size_t>(msg.to)];
  // Exactly two draws per send, impaired or not: loss on one link must never
  // shift the jitter stream of a later message, and a pass-through fabric
  // must leave the rng in the same state as an impaired one.
  const double u_drop = rng.uniform();
  const double u_jitter = rng.uniform();
  msg.sent_at = now;
  msg.seq = next_seq_++;
  ++sent_;
  if (tracer_ != nullptr) {
    tracer_->record(ctrl_span_of(msg, now, CtrlSpanEvent::kSent));
  }
  if (u_drop < opts_.drop_prob) {
    ++dropped_;
    if (tracer_ != nullptr) {
      tracer_->record(ctrl_span_of(msg, now, CtrlSpanEvent::kDropped));
    }
    return;
  }
  msg.deliver_at = now + opts_.delay + opts_.jitter * u_jitter;
  if (tracer_ != nullptr && opts_.jitter > 0.0 && u_jitter > 0.0) {
    tracer_->record(ctrl_span_of(msg, now, CtrlSpanEvent::kDelayed));
  }
  in_flight_.push_back(std::move(msg));
}

std::vector<CtrlMessage> ControlFabric::deliver(double now) {
  std::vector<CtrlMessage> due;
  auto keep = in_flight_.begin();
  for (auto it = in_flight_.begin(); it != in_flight_.end(); ++it) {
    if (it->deliver_at <= now) {
      due.push_back(std::move(*it));
    } else {
      if (keep != it) *keep = std::move(*it);
      ++keep;
    }
  }
  in_flight_.erase(keep, in_flight_.end());
  std::sort(due.begin(), due.end(),
            [](const CtrlMessage& a, const CtrlMessage& b) {
              if (a.deliver_at != b.deliver_at) {
                return a.deliver_at < b.deliver_at;
              }
              return a.seq < b.seq;
            });
  delivered_ += due.size();
  if (tracer_ != nullptr) {
    for (const auto& msg : due) {
      tracer_->record(ctrl_span_of(msg, now, CtrlSpanEvent::kDelivered));
    }
  }
  return due;
}

void ControlFabric::drop_for_dead(int endpoint, double now) {
  auto keep = in_flight_.begin();
  for (auto it = in_flight_.begin(); it != in_flight_.end(); ++it) {
    if (it->to == endpoint) {
      ++dropped_dead_;
      if (tracer_ != nullptr) {
        tracer_->record(ctrl_span_of(*it, now, CtrlSpanEvent::kDeadLetter));
      }
    } else {
      if (keep != it) *keep = std::move(*it);
      ++keep;
    }
  }
  in_flight_.erase(keep, in_flight_.end());
}

}  // namespace scalpel
