#pragma once

#include <cstdint>
#include <vector>

namespace scalpel {

/// Typed control-plane traffic between the per-cell controllers and the
/// global coordinator. Endpoint ids: 0 is the coordinator, 1 + k is cell
/// k's controller.
enum class CtrlMsgType {
  kLoadReport = 0,  // cell -> coordinator: per-server desired compute shares
  kSliceGrant,      // coordinator -> cell: epoch-numbered capacity slice row
  kHeartbeat,       // coordinator -> cell: liveness only (no state change)
};

const char* ctrl_msg_name(CtrlMsgType type);

struct CtrlMessage {
  CtrlMsgType type = CtrlMsgType::kHeartbeat;
  int from = 0;  // endpoint id of the sender
  int to = 0;    // endpoint id of the recipient
  double sent_at = 0.0;
  double deliver_at = 0.0;  // assigned by the fabric (delay + jitter)
  /// Fabric-assigned send sequence number; ties on deliver_at break on it,
  /// so delivery order is deterministic even under heavy reorder.
  std::uint64_t seq = 0;
  /// Coordinator epoch for kSliceGrant (cells reject epochs <= the last one
  /// they adopted — the split-brain guard); echo of the sender's last
  /// adopted epoch for kLoadReport.
  std::uint64_t epoch = 0;
  /// Correlation id minted by the originating endpoint (top 16 bits =
  /// endpoint id, low 48 = a per-endpoint counter that survives crashes so
  /// ids are never reused). Anti-entropy re-grants reuse the original
  /// grant's corr, so a grant's mint -> drop -> re-grant -> adoption chain
  /// reads as one causal trace on a single id. 0 = untraced.
  std::uint64_t corr = 0;
  /// kLoadReport: per-server desired global compute share (length = number
  /// of servers). kSliceGrant: the cell's phi row — fraction of each
  /// server's capacity granted to the cell. kHeartbeat: empty.
  std::vector<double> payload;
};

}  // namespace scalpel
