#pragma once

#include <vector>

namespace scalpel {

/// M/M/1-based service analysis used to make the static optimizer
/// queueing-aware: the paper's resource allocation must keep each server
/// stable under its admitted arrival rates, and expected sojourn (not bare
/// service time) is what a latency SLO sees.
namespace queueing {

/// Mean sojourn time (wait + service) of an M/M/1 queue; +inf if unstable
/// (lambda >= mu). lambda, mu in tasks/s.
double mm1_sojourn(double lambda, double mu);

/// Mean waiting time only.
double mm1_wait(double lambda, double mu);

/// P(sojourn > t) for M/M/1 (exponential tail) — used by deadline analysis.
double mm1_sojourn_tail(double lambda, double mu, double t);

/// Pollaczek-Khinchine mean sojourn of an M/G/1 queue with service moments
/// E[S] = m1, E[S^2] = m2; +inf if unstable (lambda * m1 >= 1).
double mg1_sojourn(double lambda, double m1, double m2);

/// M/D/1 mean sojourn (deterministic service s) — the upload stage, where
/// every task of a device ships the same activation payload.
double md1_sojourn(double lambda, double s);

/// Kleinrock capacity assignment: split a server's capacity F (FLOP/s)
/// across classes with arrival rate lambda_i (tasks/s) and work w_i
/// (FLOP/task) to minimize the rate-weighted mean sojourn
///   sum_i lambda_i * 1 / (c_i / w_i - lambda_i).
/// Returns per-class capacities c_i summing to F, or an empty vector if the
/// load is infeasible (sum lambda_i * w_i >= F). Classes with zero rate get
/// zero capacity.
std::vector<double> kleinrock(const std::vector<double>& lambda,
                              const std::vector<double>& work, double capacity);

/// Rate-weighted mean sojourn for a given capacity split (+inf if any class
/// is unstable). Companion evaluator for kleinrock.
double mean_sojourn(const std::vector<double>& lambda,
                    const std::vector<double>& work,
                    const std::vector<double>& capacity_split);

}  // namespace queueing
}  // namespace scalpel
