#include "sched/shares.hpp"

#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace scalpel::shares {
namespace {

void check_inputs(const std::vector<double>& demands, double capacity) {
  SCALPEL_REQUIRE(!demands.empty(), "share allocation needs demands");
  SCALPEL_REQUIRE(capacity > 0.0, "capacity must be positive");
  bool any = false;
  for (double w : demands) {
    SCALPEL_REQUIRE(w >= 0.0, "demands must be non-negative");
    any = any || w > 0.0;
  }
  SCALPEL_REQUIRE(any, "at least one demand must be positive");
}

}  // namespace

std::vector<double> sqrt_rule(const std::vector<double>& demands,
                              double capacity) {
  check_inputs(demands, capacity);
  double total = 0.0;
  for (double w : demands) total += std::sqrt(w);
  std::vector<double> out(demands.size(), 0.0);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    out[i] = capacity * std::sqrt(demands[i]) / total;
  }
  return out;
}

std::vector<double> equal_split(const std::vector<double>& demands,
                                double capacity) {
  check_inputs(demands, capacity);
  std::size_t active = 0;
  for (double w : demands) active += (w > 0.0) ? 1 : 0;
  std::vector<double> out(demands.size(), 0.0);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (demands[i] > 0.0) out[i] = capacity / static_cast<double>(active);
  }
  return out;
}

std::vector<double> proportional(const std::vector<double>& demands,
                                 double capacity) {
  check_inputs(demands, capacity);
  double total = 0.0;
  for (double w : demands) total += w;
  std::vector<double> out(demands.size(), 0.0);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    out[i] = capacity * demands[i] / total;
  }
  return out;
}

std::vector<double> max_min_fair(const std::vector<double>& caps,
                                 double capacity) {
  SCALPEL_REQUIRE(!caps.empty(), "max_min_fair needs classes");
  SCALPEL_REQUIRE(capacity > 0.0, "capacity must be positive");
  for (double c : caps) {
    SCALPEL_REQUIRE(c >= 0.0, "caps must be non-negative");
  }
  std::vector<double> alloc(caps.size(), 0.0);
  std::vector<bool> frozen(caps.size(), false);
  double remaining = capacity;
  std::size_t active = caps.size();
  // Progressive filling: raise the common level; freeze classes at their
  // caps and redistribute the freed capacity.
  while (active > 0 && remaining > 1e-15) {
    const double level = remaining / static_cast<double>(active);
    bool any_frozen = false;
    for (std::size_t i = 0; i < caps.size(); ++i) {
      if (frozen[i]) continue;
      if (caps[i] - alloc[i] <= level) {
        remaining -= caps[i] - alloc[i];
        alloc[i] = caps[i];
        frozen[i] = true;
        --active;
        any_frozen = true;
      }
    }
    if (!any_frozen) {
      for (std::size_t i = 0; i < caps.size(); ++i) {
        if (!frozen[i]) alloc[i] += level;
      }
      remaining = 0.0;
    }
  }
  return alloc;
}

double inverse_cost(const std::vector<double>& demands,
                    const std::vector<double>& alloc) {
  SCALPEL_REQUIRE(demands.size() == alloc.size(),
                  "inverse_cost arity mismatch");
  double cost = 0.0;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (demands[i] <= 0.0) continue;
    if (alloc[i] <= 0.0) return std::numeric_limits<double>::infinity();
    cost += demands[i] / alloc[i];
  }
  return cost;
}

}  // namespace scalpel::shares
