#pragma once

#include <vector>

namespace scalpel {

/// Divisible-resource share allocators. Both bandwidth (within a cell) and
/// compute (within a server) reduce to: split capacity C across classes with
/// demands w_i to minimize the rate-weighted sum of w_i / c_i. The optimum is
/// the square-root rule c_i ∝ sqrt(w_i) (Cauchy-Schwarz; verified against
/// grid search in tests).
namespace shares {

/// c_i = C * sqrt(w_i) / sum(sqrt(w)). Zero-demand classes get zero.
/// Requires at least one positive demand.
std::vector<double> sqrt_rule(const std::vector<double>& demands,
                              double capacity);

/// Equal split among classes with positive demand.
std::vector<double> equal_split(const std::vector<double>& demands,
                                double capacity);

/// c_i ∝ w_i.
std::vector<double> proportional(const std::vector<double>& demands,
                                 double capacity);

/// Max-min fairness with per-class caps: water-fill capacity so every class
/// gets min(cap_i, fair level); classes capped below the level return their
/// surplus to the others. The classic bandwidth-sharing policy, provided as
/// a comparison point to the latency-optimal sqrt rule.
std::vector<double> max_min_fair(const std::vector<double>& caps,
                                 double capacity);

/// Objective the sqrt rule minimizes: sum_i demands[i] / alloc[i]
/// (+inf if any positive-demand class has a zero share).
double inverse_cost(const std::vector<double>& demands,
                    const std::vector<double>& alloc);

}  // namespace shares
}  // namespace scalpel
