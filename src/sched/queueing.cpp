#include "sched/queueing.hpp"

#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace scalpel::queueing {
namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

double mm1_sojourn(double lambda, double mu) {
  SCALPEL_REQUIRE(lambda >= 0.0 && mu > 0.0, "invalid M/M/1 rates");
  if (lambda >= mu) return kInf;
  return 1.0 / (mu - lambda);
}

double mm1_wait(double lambda, double mu) {
  SCALPEL_REQUIRE(lambda >= 0.0 && mu > 0.0, "invalid M/M/1 rates");
  if (lambda >= mu) return kInf;
  const double rho = lambda / mu;
  return rho / (mu - lambda);
}

double mm1_sojourn_tail(double lambda, double mu, double t) {
  SCALPEL_REQUIRE(t >= 0.0, "tail time must be non-negative");
  if (lambda >= mu) return 1.0;
  return std::exp(-(mu - lambda) * t);
}

double mg1_sojourn(double lambda, double m1, double m2) {
  SCALPEL_REQUIRE(lambda >= 0.0 && m1 >= 0.0 && m2 >= 0.0,
                  "invalid M/G/1 parameters");
  // Deterministic-service moments satisfy m2 == m1^2 exactly; floating-point
  // scaling (e.g. dividing by a tiny compute share) can push m2 a hair below
  // that. Clamp rather than reject — variance cannot be negative.
  m2 = std::max(m2, m1 * m1);
  if (m1 == 0.0) return 0.0;
  const double rho = lambda * m1;
  if (rho >= 1.0) return kInf;
  return m1 + lambda * m2 / (2.0 * (1.0 - rho));
}

double md1_sojourn(double lambda, double s) {
  return mg1_sojourn(lambda, s, s * s);
}

std::vector<double> kleinrock(const std::vector<double>& lambda,
                              const std::vector<double>& work,
                              double capacity) {
  SCALPEL_REQUIRE(lambda.size() == work.size(), "kleinrock arity mismatch");
  SCALPEL_REQUIRE(capacity > 0.0, "capacity must be positive");
  double base = 0.0;       // minimum capacity for stability
  double sqrt_sum = 0.0;
  for (std::size_t i = 0; i < lambda.size(); ++i) {
    SCALPEL_REQUIRE(lambda[i] >= 0.0 && work[i] >= 0.0,
                    "rates and work must be non-negative");
    if (lambda[i] > 0.0) {
      SCALPEL_REQUIRE(work[i] > 0.0, "active class must have positive work");
      base += lambda[i] * work[i];
      sqrt_sum += std::sqrt(lambda[i] * work[i]);
    }
  }
  if (base >= capacity) return {};  // infeasible load
  const double spare = capacity - base;
  std::vector<double> out(lambda.size(), 0.0);
  for (std::size_t i = 0; i < lambda.size(); ++i) {
    if (lambda[i] > 0.0) {
      out[i] = lambda[i] * work[i] +
               spare * std::sqrt(lambda[i] * work[i]) / sqrt_sum;
    }
  }
  return out;
}

double mean_sojourn(const std::vector<double>& lambda,
                    const std::vector<double>& work,
                    const std::vector<double>& capacity_split) {
  SCALPEL_REQUIRE(lambda.size() == work.size() &&
                      lambda.size() == capacity_split.size(),
                  "mean_sojourn arity mismatch");
  double total_rate = 0.0;
  double weighted = 0.0;
  for (std::size_t i = 0; i < lambda.size(); ++i) {
    if (lambda[i] <= 0.0) continue;
    total_rate += lambda[i];
    if (capacity_split[i] <= 0.0) return kInf;
    const double mu = capacity_split[i] / work[i];
    const double w = mm1_sojourn(lambda[i], mu);
    if (!std::isfinite(w)) return kInf;
    weighted += lambda[i] * w;
  }
  if (total_rate <= 0.0) return 0.0;
  return weighted / total_rate;
}

}  // namespace scalpel::queueing
