#pragma once

#include <cstdint>
#include <vector>

namespace scalpel {

/// Server-selection ("offloading") subproblem: each device class must pick
/// one edge server; a server's capacity is split among its assignees by the
/// Kleinrock rule, so one device's choice changes everyone's queueing delay.
/// This is the distributed-offloading component: the best-response dynamics
/// converge to a Nash point whose social cost tests show is near the small-
/// instance optimum.
struct OffloadingProblem {
  /// base_latency[i][j]: non-queueing latency (device compute + upload +
  /// rtt) of device i when served by server j. +inf forbids the pair.
  std::vector<std::vector<double>> base_latency;
  /// rate[i]: offloaded-task arrival rate of device i (tasks/s).
  std::vector<double> rate;
  /// work[i][j]: expected server FLOPs per offloaded task of device i on j.
  std::vector<std::vector<double>> work;
  /// capacity[j]: effective FLOP/s of server j.
  std::vector<double> capacity;

  std::size_t num_devices() const { return rate.size(); }
  std::size_t num_servers() const { return capacity.size(); }
  void validate() const;
};

struct OffloadingSolution {
  std::vector<int> server_of;       // per device; never -1 on success
  std::vector<double> latency;      // per-device expected latency
  double social_cost = 0.0;         // rate-weighted mean latency
  std::size_t iterations = 0;       // best-response rounds (if applicable)
  bool converged = false;
  bool feasible = false;
};

/// Rate-weighted mean latency of an assignment; also fills per-device
/// latencies. Infeasible (overloaded server / forbidden pair) gives +inf.
double evaluate_assignment(const OffloadingProblem& p,
                           const std::vector<int>& server_of,
                           std::vector<double>* per_device_latency);

/// Devices sorted by demand, each placed on the currently cheapest server.
OffloadingSolution greedy_offloading(const OffloadingProblem& p);

struct BestResponseOptions {
  std::size_t max_rounds = 100;
  /// A device moves only if its own latency improves by this factor.
  double improvement_eps = 1e-6;
};

/// Asynchronous best-response dynamics from the greedy start.
OffloadingSolution best_response_offloading(
    const OffloadingProblem& p, const BestResponseOptions& opts = {});

/// Exact optimum by enumeration — O(servers^devices); reference for tests
/// and the small instances of the convergence bench.
OffloadingSolution exhaustive_offloading(const OffloadingProblem& p);

/// Per-device share of its assigned server's capacity under the Kleinrock
/// split (fractions in (0, 1]; sum per server <= 1). Devices on an
/// overloaded server get 0 — callers must treat that as infeasible.
std::vector<double> kleinrock_shares(const OffloadingProblem& p,
                                     const std::vector<int>& server_of);

}  // namespace scalpel
