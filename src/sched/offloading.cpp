#include "sched/offloading.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "sched/queueing.hpp"
#include "util/assert.hpp"

namespace scalpel {
namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

void OffloadingProblem::validate() const {
  SCALPEL_REQUIRE(!rate.empty(), "offloading problem has no devices");
  SCALPEL_REQUIRE(!capacity.empty(), "offloading problem has no servers");
  SCALPEL_REQUIRE(base_latency.size() == rate.size() &&
                      work.size() == rate.size(),
                  "offloading problem arity mismatch");
  for (std::size_t i = 0; i < rate.size(); ++i) {
    SCALPEL_REQUIRE(rate[i] > 0.0, "offloaded rates must be positive");
    SCALPEL_REQUIRE(base_latency[i].size() == capacity.size() &&
                        work[i].size() == capacity.size(),
                    "offloading problem row arity mismatch");
    for (std::size_t j = 0; j < capacity.size(); ++j) {
      SCALPEL_REQUIRE(work[i][j] > 0.0, "server work must be positive");
    }
  }
  for (double c : capacity) {
    SCALPEL_REQUIRE(c > 0.0, "server capacity must be positive");
  }
}

double evaluate_assignment(const OffloadingProblem& p,
                           const std::vector<int>& server_of,
                           std::vector<double>* per_device_latency) {
  SCALPEL_REQUIRE(server_of.size() == p.num_devices(),
                  "assignment arity mismatch");
  const std::size_t n = p.num_devices();
  const std::size_t m = p.num_servers();
  if (per_device_latency) per_device_latency->assign(n, kInf);

  double weighted = 0.0;
  double total_rate = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < n; ++i) {
      if (server_of[i] == static_cast<int>(j)) members.push_back(i);
    }
    if (members.empty()) continue;
    std::vector<double> lambda;
    std::vector<double> work;
    for (std::size_t i : members) {
      if (!std::isfinite(p.base_latency[i][j])) return kInf;
      lambda.push_back(p.rate[i]);
      work.push_back(p.work[i][j]);
    }
    const auto split = queueing::kleinrock(lambda, work, p.capacity[j]);
    if (split.empty()) return kInf;  // unstable server
    for (std::size_t k = 0; k < members.size(); ++k) {
      const std::size_t i = members[k];
      const double mu = split[k] / work[k];
      const double sojourn = queueing::mm1_sojourn(lambda[k], mu);
      if (!std::isfinite(sojourn)) return kInf;
      const double latency = p.base_latency[i][j] + sojourn;
      if (per_device_latency) (*per_device_latency)[i] = latency;
      weighted += p.rate[i] * latency;
      total_rate += p.rate[i];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (server_of[i] < 0 || server_of[i] >= static_cast<int>(m)) return kInf;
  }
  return total_rate > 0.0 ? weighted / total_rate : 0.0;
}

namespace {

OffloadingSolution finalize(const OffloadingProblem& p, std::vector<int> assign,
                            std::size_t iterations, bool converged) {
  OffloadingSolution s;
  s.server_of = std::move(assign);
  s.social_cost = evaluate_assignment(p, s.server_of, &s.latency);
  s.iterations = iterations;
  s.converged = converged;
  s.feasible = std::isfinite(s.social_cost);
  return s;
}

}  // namespace

OffloadingSolution greedy_offloading(const OffloadingProblem& p) {
  p.validate();
  const std::size_t n = p.num_devices();
  const std::size_t m = p.num_servers();

  // Place heavy hitters first so they land on the least-loaded servers.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return p.rate[a] * p.work[a][0] > p.rate[b] * p.work[b][0];
  });

  std::vector<int> assign(n, -1);
  std::vector<double> load(m, 0.0);  // committed FLOP/s demand
  for (std::size_t i : order) {
    double best_cost = kInf;
    int best_j = -1;
    for (std::size_t j = 0; j < m; ++j) {
      if (!std::isfinite(p.base_latency[i][j])) continue;
      const double demand = p.rate[i] * p.work[i][j];
      if (load[j] + demand >= p.capacity[j]) continue;
      // Myopic score: base latency + single-class sojourn on the spare.
      const double mu = (p.capacity[j] - load[j]) / p.work[i][j];
      const double cost =
          p.base_latency[i][j] + queueing::mm1_sojourn(p.rate[i], mu);
      if (cost < best_cost) {
        best_cost = cost;
        best_j = static_cast<int>(j);
      }
    }
    if (best_j < 0) {
      // No stable placement: dump on the relatively least-loaded server so
      // the evaluator reports infeasibility coherently.
      std::size_t fallback = 0;
      double best_frac = kInf;
      for (std::size_t j = 0; j < m; ++j) {
        const double frac = load[j] / p.capacity[j];
        if (frac < best_frac) {
          best_frac = frac;
          fallback = j;
        }
      }
      best_j = static_cast<int>(fallback);
    }
    assign[i] = best_j;
    load[static_cast<std::size_t>(best_j)] +=
        p.rate[i] * p.work[i][static_cast<std::size_t>(best_j)];
  }
  return finalize(p, std::move(assign), 0, true);
}

OffloadingSolution best_response_offloading(const OffloadingProblem& p,
                                            const BestResponseOptions& opts) {
  OffloadingSolution current = greedy_offloading(p);
  const std::size_t n = p.num_devices();
  const std::size_t m = p.num_servers();

  std::size_t round = 0;
  bool converged = false;
  for (; round < opts.max_rounds; ++round) {
    bool moved = false;
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<double> latency;
      evaluate_assignment(p, current.server_of, &latency);
      const double own = latency[i];
      int best_j = current.server_of[i];
      double best_latency = own;
      for (std::size_t j = 0; j < m; ++j) {
        if (static_cast<int>(j) == current.server_of[i]) continue;
        std::vector<int> trial = current.server_of;
        trial[i] = static_cast<int>(j);
        std::vector<double> trial_latency;
        const double cost = evaluate_assignment(p, trial, &trial_latency);
        if (!std::isfinite(cost)) continue;
        if (trial_latency[i] <
            best_latency * (1.0 - opts.improvement_eps)) {
          best_latency = trial_latency[i];
          best_j = static_cast<int>(j);
        }
      }
      if (best_j != current.server_of[i]) {
        current.server_of[i] = best_j;
        moved = true;
      }
    }
    if (!moved) {
      converged = true;
      break;
    }
  }
  return finalize(p, std::move(current.server_of), round, converged);
}

std::vector<double> kleinrock_shares(const OffloadingProblem& p,
                                     const std::vector<int>& server_of) {
  SCALPEL_REQUIRE(server_of.size() == p.num_devices(),
                  "assignment arity mismatch");
  const std::size_t n = p.num_devices();
  const std::size_t m = p.num_servers();
  std::vector<double> out(n, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < n; ++i) {
      if (server_of[i] == static_cast<int>(j)) members.push_back(i);
    }
    if (members.empty()) continue;
    std::vector<double> lambda;
    std::vector<double> work;
    for (std::size_t i : members) {
      lambda.push_back(p.rate[i]);
      work.push_back(p.work[i][j]);
    }
    const auto split = queueing::kleinrock(lambda, work, p.capacity[j]);
    if (split.empty()) continue;  // overloaded: members keep share 0
    for (std::size_t k = 0; k < members.size(); ++k) {
      out[members[k]] = split[k] / p.capacity[j];
    }
  }
  return out;
}

OffloadingSolution exhaustive_offloading(const OffloadingProblem& p) {
  p.validate();
  const std::size_t n = p.num_devices();
  const std::size_t m = p.num_servers();
  double combos = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    combos *= static_cast<double>(m);
    SCALPEL_REQUIRE(combos <= 2e7,
                    "exhaustive offloading limited to small instances");
  }
  std::vector<int> assign(n, 0);
  std::vector<int> best = assign;
  double best_cost = kInf;
  for (;;) {
    const double cost = evaluate_assignment(p, assign, nullptr);
    if (cost < best_cost) {
      best_cost = cost;
      best = assign;
    }
    // Odometer increment.
    std::size_t k = 0;
    while (k < n && ++assign[k] == static_cast<int>(m)) {
      assign[k] = 0;
      ++k;
    }
    if (k == n) break;
  }
  return finalize(p, std::move(best), 0, true);
}

}  // namespace scalpel
