#pragma once

#include <string>

namespace scalpel {

/// First-order device energy model: E = P_active * t_compute +
/// P_tx * t_transmit + P_idle * t_wait. Used by the energy-aware ablation
/// bench; the joint optimizer can take energy as a secondary objective.
struct EnergyProfile {
  std::string name;
  double p_active = 0.0;  // watts while computing
  double p_tx = 0.0;      // watts while transmitting
  double p_idle = 0.0;    // watts while waiting for the server

  /// Joules for a task with the given phase durations (seconds).
  double task_energy(double t_compute, double t_transmit, double t_wait) const;
};

namespace profiles {
EnergyProfile energy_iot();         // coin-cell class
EnergyProfile energy_phone();
EnergyProfile energy_jetson();
}  // namespace profiles

}  // namespace scalpel
