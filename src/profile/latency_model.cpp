#include "profile/latency_model.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace scalpel {

double LatencyModel::layer_latency(const Graph& graph, NodeId id,
                                   const ComputeProfile& profile) {
  const auto& node = graph.node(id);
  if (node.spec.kind == LayerKind::kInput) return 0.0;
  SCALPEL_REQUIRE(profile.peak_flops > 0.0 && profile.mem_bw > 0.0,
                  "compute profile must have positive rates");

  // Bytes touched: inputs + output + parameters (float32).
  std::int64_t bytes = node.out_shape.bytes() + node.params * 4;
  for (NodeId u : node.inputs) {
    bytes += graph.node(u).out_shape.bytes();
  }

  const double t_compute = static_cast<double>(node.flops) /
                           profile.effective_flops(node.spec.kind);
  const double t_memory = static_cast<double>(bytes) / profile.mem_bw;
  return std::max(t_compute, t_memory) + profile.layer_overhead;
}

double LatencyModel::graph_latency(const Graph& graph,
                                   const ComputeProfile& profile) {
  double total = 0.0;
  for (std::size_t i = 0; i < graph.size(); ++i) {
    total += layer_latency(graph, static_cast<NodeId>(i), profile);
  }
  return total;
}

double LatencyModel::range_latency(const Graph& graph, NodeId after,
                                   NodeId upto,
                                   const ComputeProfile& profile) {
  SCALPEL_REQUIRE(after <= upto, "range_latency needs after <= upto");
  double total = 0.0;
  for (NodeId v = after + 1; v <= upto; ++v) {
    total += layer_latency(graph, v, profile);
  }
  return total;
}

std::vector<double> LatencyModel::per_layer(const Graph& graph,
                                            const ComputeProfile& profile) {
  std::vector<double> out(graph.size());
  for (std::size_t i = 0; i < graph.size(); ++i) {
    out[i] = layer_latency(graph, static_cast<NodeId>(i), profile);
  }
  return out;
}

std::vector<double> LatencyModel::prefix(const Graph& graph,
                                         const ComputeProfile& profile) {
  std::vector<double> out = per_layer(graph, profile);
  for (std::size_t i = 1; i < out.size(); ++i) out[i] += out[i - 1];
  return out;
}

double transfer_latency(std::int64_t bytes, double bandwidth,
                        double rtt_onoff) {
  SCALPEL_REQUIRE(bandwidth > 0.0, "link bandwidth must be positive");
  SCALPEL_REQUIRE(bytes >= 0, "transfer size must be non-negative");
  return static_cast<double>(bytes) / bandwidth + rtt_onoff;
}

}  // namespace scalpel
