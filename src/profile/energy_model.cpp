#include "profile/energy_model.hpp"

#include "util/assert.hpp"

namespace scalpel {

double EnergyProfile::task_energy(double t_compute, double t_transmit,
                                  double t_wait) const {
  SCALPEL_REQUIRE(t_compute >= 0.0 && t_transmit >= 0.0 && t_wait >= 0.0,
                  "phase durations must be non-negative");
  return p_active * t_compute + p_tx * t_transmit + p_idle * t_wait;
}

namespace profiles {

EnergyProfile energy_iot() { return {"energy_iot", 1.2, 0.8, 0.05}; }
EnergyProfile energy_phone() { return {"energy_phone", 4.0, 1.8, 0.3}; }
EnergyProfile energy_jetson() { return {"energy_jetson", 10.0, 2.0, 1.5}; }

}  // namespace profiles
}  // namespace scalpel
