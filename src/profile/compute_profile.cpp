#include "profile/compute_profile.hpp"

#include "util/assert.hpp"
#include "util/units.hpp"

namespace scalpel {

double ComputeProfile::effective_flops(LayerKind kind) const {
  const auto it = efficiency.find(kind);
  const double eff = it != efficiency.end() ? it->second : 0.3;
  return peak_flops * eff;
}

ComputeProfile ComputeProfile::scaled(double share) const {
  SCALPEL_REQUIRE(share > 0.0 && share <= 1.0, "share must be in (0, 1]");
  ComputeProfile p = *this;
  p.peak_flops *= share;
  p.mem_bw *= share;
  return p;
}

namespace profiles {
namespace {

/// Shared efficiency shape: GEMM-style ops come close to peak; depthwise and
/// elementwise ops are memory bound and see a fraction of it.
std::map<LayerKind, double> cpu_efficiency() {
  return {
      {LayerKind::kConv, 0.55},   {LayerKind::kDWConv, 0.18},
      {LayerKind::kFC, 0.40},     {LayerKind::kMaxPool, 0.15},
      {LayerKind::kAvgPool, 0.15},{LayerKind::kGlobalAvgPool, 0.15},
      {LayerKind::kReLU, 0.10},   {LayerKind::kBatchNorm, 0.12},
      {LayerKind::kAdd, 0.10},    {LayerKind::kSoftmax, 0.10},
  };
}

std::map<LayerKind, double> gpu_efficiency() {
  return {
      {LayerKind::kConv, 0.70},   {LayerKind::kDWConv, 0.12},
      {LayerKind::kFC, 0.35},     {LayerKind::kMaxPool, 0.20},
      {LayerKind::kAvgPool, 0.20},{LayerKind::kGlobalAvgPool, 0.20},
      {LayerKind::kReLU, 0.15},   {LayerKind::kBatchNorm, 0.15},
      {LayerKind::kAdd, 0.15},    {LayerKind::kSoftmax, 0.15},
  };
}

ComputeProfile make(const std::string& name, double gf, double bw_gbs,
                    double overhead, std::map<LayerKind, double> eff) {
  ComputeProfile p;
  p.name = name;
  p.peak_flops = gflops(gf);
  p.mem_bw = bw_gbs * 1e9;
  p.layer_overhead = overhead;
  p.efficiency = std::move(eff);
  return p;
}

}  // namespace

ComputeProfile iot_camera() {
  return make("iot_camera", 2.0, 1.5, 80e-6, cpu_efficiency());
}
ComputeProfile raspberry_pi4() {
  return make("raspberry_pi4", 8.0, 4.0, 50e-6, cpu_efficiency());
}
ComputeProfile smartphone() {
  return make("smartphone", 30.0, 12.0, 30e-6, cpu_efficiency());
}
ComputeProfile jetson_nano() {
  return make("jetson_nano", 140.0, 25.0, 40e-6, gpu_efficiency());
}
ComputeProfile edge_cpu() {
  return make("edge_cpu", 250.0, 80.0, 20e-6, cpu_efficiency());
}
ComputeProfile edge_gpu_t4() {
  return make("edge_gpu_t4", 3500.0, 300.0, 35e-6, gpu_efficiency());
}
ComputeProfile edge_gpu_v100() {
  return make("edge_gpu_v100", 10000.0, 900.0, 35e-6, gpu_efficiency());
}

ComputeProfile by_name(const std::string& name) {
  if (name == "iot_camera") return iot_camera();
  if (name == "raspberry_pi4") return raspberry_pi4();
  if (name == "smartphone") return smartphone();
  if (name == "jetson_nano") return jetson_nano();
  if (name == "edge_cpu") return edge_cpu();
  if (name == "edge_gpu_t4") return edge_gpu_t4();
  if (name == "edge_gpu_v100") return edge_gpu_v100();
  SCALPEL_REQUIRE(false, "unknown compute profile: " + name);
}

}  // namespace profiles
}  // namespace scalpel
