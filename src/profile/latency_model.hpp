#pragma once

#include <vector>

#include "nn/graph.hpp"
#include "profile/compute_profile.hpp"

namespace scalpel {

/// Analytical per-layer latency prediction. This is the model the optimizer
/// reasons with — it replaces on-testbed profiling runs from the paper with a
/// roofline over the same quantities (FLOPs, activation/param bytes).
class LatencyModel {
 public:
  /// Predicted execution time of a single node on `profile`.
  static double layer_latency(const Graph& graph, NodeId id,
                              const ComputeProfile& profile);

  /// Whole-graph execution time (sum over nodes; batch 1, no overlap).
  static double graph_latency(const Graph& graph,
                              const ComputeProfile& profile);

  /// Time for nodes (after .. upto] — the partitioned-suffix cost.
  static double range_latency(const Graph& graph, NodeId after, NodeId upto,
                              const ComputeProfile& profile);

  /// Per-node latencies for the whole graph, index = node id.
  static std::vector<double> per_layer(const Graph& graph,
                                       const ComputeProfile& profile);

  /// Inclusive prefix sums of per_layer (prefix[k] = time for nodes 0..k).
  static std::vector<double> prefix(const Graph& graph,
                                    const ComputeProfile& profile);
};

/// Transmission time of `bytes` over a link with bandwidth bytes/s and a
/// fixed one-way latency (seconds). bandwidth must be positive.
double transfer_latency(std::int64_t bytes, double bandwidth, double rtt_onoff);

}  // namespace scalpel
