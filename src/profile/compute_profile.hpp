#pragma once

#include <map>
#include <string>

#include "nn/layer.hpp"

namespace scalpel {

/// Capability description of one compute unit (an end device or one edge
/// server). Calibrated against public device benchmarks; the latency model is
/// a roofline: per-layer time = max(compute time, memory time) with a
/// per-kind efficiency discount (convs vectorize well, depthwise and
/// elementwise ops do not).
struct ComputeProfile {
  std::string name;
  double peak_flops = 0.0;    // FLOP/s at full allocation
  double mem_bw = 0.0;        // bytes/s
  double layer_overhead = 0.0;  // fixed per-layer dispatch cost (seconds)
  std::map<LayerKind, double> efficiency;  // fraction of peak, (0, 1]

  /// Effective FLOP/s for a layer kind (peak * efficiency; default 0.3).
  double effective_flops(LayerKind kind) const;

  /// A scaled copy (capability share x in (0, 1]); models a server slice
  /// granted to one task class. Memory bandwidth scales with the share too —
  /// a pessimistic but standard assumption for co-located tenants.
  ComputeProfile scaled(double share) const;
};

/// Preset catalog (names are stable API, used by benches and examples).
namespace profiles {

// End devices.
ComputeProfile iot_camera();      // ~2 GFLOPS — constrained IoT camera SoC
ComputeProfile raspberry_pi4();   // ~8 GFLOPS
ComputeProfile smartphone();      // ~30 GFLOPS — mid-range phone NPU-less
ComputeProfile jetson_nano();     // ~140 GFLOPS effective

// Edge servers.
ComputeProfile edge_cpu();        // ~250 GFLOPS — 16-core Xeon-class
ComputeProfile edge_gpu_t4();     // ~3.5 TFLOPS effective fp32
ComputeProfile edge_gpu_v100();   // ~10 TFLOPS effective fp32

/// Lookup by preset name; throws on unknown name.
ComputeProfile by_name(const std::string& name);

}  // namespace profiles
}  // namespace scalpel
