#include "surgery/dot.hpp"

#include <set>
#include <sstream>

namespace scalpel {
namespace {

void emit_header(std::ostringstream& out, const Graph& graph) {
  out << "digraph \"" << graph.name() << "\" {\n";
  out << "  rankdir=TB;\n";
  out << "  node [shape=box, fontsize=10, fontname=\"Helvetica\"];\n";
}

void emit_nodes(std::ostringstream& out, const Graph& graph,
                const std::set<NodeId>& exit_attaches, NodeId cut_after,
                bool has_cut) {
  const std::set<NodeId> cuts = [&] {
    std::set<NodeId> s;
    for (const auto& c : graph.clean_cuts()) s.insert(c.after);
    return s;
  }();
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const auto id = static_cast<NodeId>(i);
    const auto& node = graph.node(id);
    out << "  n" << i << " [label=\"" << layer_kind_name(node.spec.kind);
    if (!node.spec.name.empty()) out << "\\n" << node.spec.name;
    out << "\\n" << node.out_shape.to_string() << "\"";
    if (exit_attaches.count(id)) {
      out << ", style=filled, fillcolor=lightblue";
    } else if (cuts.count(id)) {
      out << ", color=darkgreen";
    }
    if (has_cut && id == cut_after) {
      out << ", style=filled, fillcolor=salmon";
    }
    out << "];\n";
  }
  for (std::size_t i = 0; i < graph.size(); ++i) {
    for (NodeId u : graph.node(static_cast<NodeId>(i)).inputs) {
      out << "  n" << u << " -> n" << i;
      if (has_cut && u == cut_after) {
        out << " [style=dashed, color=red, label=\"cut\"]";
      }
      out << ";\n";
    }
  }
}

}  // namespace

std::string to_dot(const Graph& graph) {
  std::ostringstream out;
  emit_header(out, graph);
  emit_nodes(out, graph, {}, -1, false);
  out << "}\n";
  return out.str();
}

std::string to_dot(const Graph& graph, const SurgeryPlan& plan,
                   const std::vector<ExitCandidate>& candidates) {
  std::ostringstream out;
  emit_header(out, graph);
  std::set<NodeId> attaches;
  for (const auto& e : plan.policy.exits) {
    attaches.insert(candidates.at(e.candidate).attach);
  }
  emit_nodes(out, graph, attaches, plan.partition_after,
             !plan.device_only);
  out << "}\n";
  return out.str();
}

}  // namespace scalpel
