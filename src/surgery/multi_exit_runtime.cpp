#include "surgery/multi_exit_runtime.hpp"

#include "util/assert.hpp"

namespace scalpel {

double MultiExitRuntime::prob_threshold(double theta) {
  SCALPEL_REQUIRE(theta >= 0.0 && theta < 1.0, "theta must be in [0, 1)");
  return 0.5 + 0.5 * theta;
}

MultiExitRuntime::MultiExitRuntime(const Graph& backbone,
                                   std::vector<ExitCandidate> candidates,
                                   ExitPolicy policy, std::uint64_t weight_seed,
                                   ThreadPool* pool)
    : backbone_(&backbone),
      candidates_(std::move(candidates)),
      policy_(std::move(policy)),
      backbone_exec_(backbone, weight_seed, pool) {
  validate_policy(policy_, candidates_);
  for (const auto& choice : policy_.exits) {
    const auto& cand = candidates_[choice.candidate];
    // Each head gets an independent weight stream derived from its attach id
    // so head weights are stable under policy changes.
    head_execs_.push_back(std::make_unique<Executor>(
        cand.head, weight_seed ^ (0x9e37ULL + static_cast<std::uint64_t>(
                                                   cand.attach) * 0x85ebca6bULL),
        pool));
  }
}

MultiExitRuntime::Result MultiExitRuntime::infer(const Tensor& input) const {
  Result result;
  Tensor activation = input;
  NodeId at = 0;  // current backbone position (input node)
  for (std::size_t i = 0; i < policy_.exits.size(); ++i) {
    const auto& choice = policy_.exits[i];
    const auto& cand = candidates_[choice.candidate];
    if (cand.attach > at) {
      activation = backbone_exec_.run_range(activation, at, cand.attach);
      result.executed_flops += backbone_->range_flops(at, cand.attach);
      at = cand.attach;
    }
    const Tensor probs = head_execs_[i]->run(activation);
    result.executed_flops += cand.head_flops;
    double top1 = 0.0;
    for (std::int64_t k = 0; k < probs.numel(); ++k) {
      top1 = std::max(top1, static_cast<double>(probs.at(k)));
    }
    if (top1 >= prob_threshold(choice.theta)) {
      result.probs = probs;
      result.exit_index = static_cast<int>(i);
      result.confidence = top1;
      return result;
    }
  }
  const NodeId out = backbone_->output();
  activation = backbone_exec_.run_range(activation, at, out);
  result.executed_flops += backbone_->range_flops(at, out);
  result.probs = activation;
  result.exit_index = -1;
  double top1 = 0.0;
  for (std::int64_t k = 0; k < result.probs.numel(); ++k) {
    top1 = std::max(top1, static_cast<double>(result.probs.at(k)));
  }
  result.confidence = top1;
  return result;
}

}  // namespace scalpel
