#include "surgery/partition.hpp"

#include <limits>

#include "profile/latency_model.hpp"
#include "util/assert.hpp"

namespace scalpel {

std::vector<PartitionChoice> partition_curve(const Graph& model,
                                             const ComputeProfile& device,
                                             const ComputeProfile& server,
                                             const LinkSpec& link) {
  SCALPEL_REQUIRE(link.bandwidth > 0.0, "link bandwidth must be positive");
  std::vector<PartitionChoice> out;
  const auto device_prefix = LatencyModel::prefix(model, device);
  const auto server_prefix = LatencyModel::prefix(model, server);
  const double server_total = server_prefix.back();

  for (const auto& cut : model.clean_cuts()) {
    PartitionChoice c;
    c.cut_after = cut.after;
    c.device_time = device_prefix[static_cast<std::size_t>(cut.after)];
    c.upload_time = transfer_latency(cut.activation_bytes, link.bandwidth,
                                     link.rtt);
    c.server_time =
        server_total - server_prefix[static_cast<std::size_t>(cut.after)];
    out.push_back(c);
  }
  PartitionChoice device_only;
  device_only.cut_after = model.output();
  device_only.device_only = true;
  device_only.device_time = device_prefix.back();
  out.push_back(device_only);
  return out;
}

PartitionChoice optimal_partition(const Graph& model,
                                  const ComputeProfile& device,
                                  const ComputeProfile& server,
                                  const LinkSpec& link) {
  PartitionChoice best;
  double best_total = std::numeric_limits<double>::infinity();
  for (const auto& c : partition_curve(model, device, server, link)) {
    if (c.total() < best_total) {
      best_total = c.total();
      best = c;
    }
  }
  return best;
}

}  // namespace scalpel
