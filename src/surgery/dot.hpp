#pragma once

#include <string>

#include "nn/graph.hpp"
#include "surgery/plan.hpp"

namespace scalpel {

/// Graphviz DOT rendering of a model graph for debugging/visualization:
/// nodes carry kind/name/shape, edges follow dataflow, clean cuts are marked.
std::string to_dot(const Graph& graph);

/// As above, but highlights a surgery plan: the partition cut is drawn as a
/// dashed red separator and enabled exit attach points are colored.
std::string to_dot(const Graph& graph, const SurgeryPlan& plan,
                   const std::vector<ExitCandidate>& candidates);

}  // namespace scalpel
