#include "surgery/exit_candidates.hpp"

#include "util/assert.hpp"

namespace scalpel {

Graph make_exit_head(const Shape& attach_shape, std::int64_t num_classes,
                     ExitHeadStyle style) {
  SCALPEL_REQUIRE(num_classes > 0, "exit head needs positive class count");
  Graph head("exit_head");
  const NodeId in = head.add(LayerSpec::input(attach_shape));
  NodeId cur = in;
  if (attach_shape.rank() == 3) {
    if (style == ExitHeadStyle::kConv) {
      cur = head.add(LayerSpec::conv(128, 3, 1, 1, "head_conv"), {cur});
      cur = head.add(LayerSpec::relu("head_relu"), {cur});
    }
    cur = head.add(LayerSpec::global_avgpool("head_gavg"), {cur});
  } else {
    SCALPEL_REQUIRE(attach_shape.rank() == 1,
                    "exit head expects CHW or flat attach activation");
  }
  cur = head.add(LayerSpec::fc(num_classes, "head_fc"), {cur});
  head.add(LayerSpec::softmax("head_softmax"), {cur});
  return head;
}

std::vector<ExitCandidate> find_exit_candidates(
    const Graph& backbone, const ExitCandidateOptions& opts) {
  SCALPEL_REQUIRE(backbone.total_flops() > 0, "backbone has no compute");
  std::vector<ExitCandidate> out;
  const double total = static_cast<double>(backbone.total_flops());
  double last_depth = -1.0;
  for (const auto& cut : backbone.clean_cuts()) {
    const auto& shape = backbone.node(cut.after).out_shape;
    if (shape.rank() != 3 && shape.rank() != 1) continue;
    const double depth = static_cast<double>(cut.prefix_flops) / total;
    if (depth <= 0.0) continue;  // an exit before any compute is useless
    if (depth > opts.max_depth) break;
    if (last_depth >= 0.0 && depth - last_depth < opts.min_spacing) continue;
    ExitCandidate c;
    c.attach = cut.after;
    c.depth_fraction = depth;
    c.head = make_exit_head(shape, opts.num_classes, opts.head_style);
    c.head_flops = c.head.total_flops();
    if (opts.head_style == ExitHeadStyle::kConv && shape.rank() == 3) {
      c.accuracy_bonus = 0.015;
    }
    out.push_back(std::move(c));
    last_depth = depth;
    if (out.size() >= opts.max_candidates) break;
  }
  return out;
}

}  // namespace scalpel
