#include "surgery/exit_policy.hpp"

#include <algorithm>

#include "profile/latency_model.hpp"
#include "util/assert.hpp"

namespace scalpel {

void validate_policy(const ExitPolicy& policy,
                     const std::vector<ExitCandidate>& candidates) {
  std::size_t prev = 0;
  bool first = true;
  for (const auto& e : policy.exits) {
    SCALPEL_REQUIRE(e.candidate < candidates.size(),
                    "exit candidate index out of range");
    SCALPEL_REQUIRE(first || e.candidate > prev,
                    "policy exits must be strictly increasing by depth");
    SCALPEL_REQUIRE(e.theta >= 0.0 && e.theta < 1.0,
                    "exit theta must be in [0, 1)");
    prev = e.candidate;
    first = false;
  }
}

ExitStats evaluate_policy(const Graph& backbone,
                          const std::vector<ExitCandidate>& candidates,
                          const ExitPolicy& policy, const AccuracyModel& acc,
                          const DifficultyModel& difficulty) {
  validate_policy(policy, candidates);
  ExitStats stats;
  stats.fire_prob.resize(policy.exits.size(), 0.0);
  stats.reach_prob.resize(policy.exits.size(), 0.0);

  // Exit i covers difficulties x <= cap(d_i) * (1 - theta_i); a task
  // terminates at the first enabled exit covering its difficulty, so exit
  // i's unconditional fire probability is the *measure* of the newly
  // covered interval under the difficulty distribution.
  double covered = 0.0;  // in difficulty space
  double reach = 1.0;
  double acc_sum = 0.0;
  for (std::size_t i = 0; i < policy.exits.size(); ++i) {
    const auto& choice = policy.exits[i];
    const auto& cand = candidates[choice.candidate];
    const double limit =
        acc.capability(cand.depth_fraction) * (1.0 - choice.theta);
    const double new_covered = std::max(covered, limit);
    const double fire =
        difficulty.cdf(new_covered) - difficulty.cdf(covered);
    stats.reach_prob[i] = reach;
    stats.fire_prob[i] = fire;
    acc_sum += fire * std::min(acc.selective_ceiling,
                               acc.conditional_accuracy(cand.depth_fraction,
                                                        choice.theta) +
                                   cand.accuracy_bonus);
    covered = new_covered;
    reach -= fire;
  }
  stats.final_prob = std::max(0.0, reach);
  acc_sum += stats.final_prob * acc.a_max;
  stats.expected_accuracy = acc_sum;

  // Expected executed FLOPs: a task reaching enabled exit i has run the
  // backbone segment since the previous enabled exit plus exit i's head;
  // falling through to the end adds the final backbone segment.
  double flops = 0.0;
  NodeId prev_attach = 0;  // input node
  for (std::size_t i = 0; i < policy.exits.size(); ++i) {
    const auto& cand = candidates[policy.exits[i].candidate];
    const double segment = static_cast<double>(
        backbone.range_flops(prev_attach, cand.attach));
    flops += stats.reach_prob[i] *
             (segment + static_cast<double>(cand.head_flops));
    prev_attach = cand.attach;
  }
  flops += stats.final_prob * static_cast<double>(backbone.range_flops(
                                  prev_attach, backbone.output()));
  stats.expected_flops = flops;
  return stats;
}

double expected_policy_latency(const Graph& backbone,
                               const std::vector<ExitCandidate>& candidates,
                               const ExitPolicy& policy, const ExitStats& stats,
                               const ComputeProfile& profile) {
  double latency = 0.0;
  NodeId prev_attach = 0;
  for (std::size_t i = 0; i < policy.exits.size(); ++i) {
    const auto& cand = candidates[policy.exits[i].candidate];
    const double segment =
        LatencyModel::range_latency(backbone, prev_attach, cand.attach,
                                    profile);
    const double head = LatencyModel::graph_latency(cand.head, profile);
    latency += stats.reach_prob[i] * (segment + head);
    prev_attach = cand.attach;
  }
  latency += stats.final_prob *
             LatencyModel::range_latency(backbone, prev_attach,
                                         backbone.output(), profile);
  return latency;
}

}  // namespace scalpel
