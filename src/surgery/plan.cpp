#include "surgery/plan.hpp"

#include <algorithm>

#include "profile/latency_model.hpp"
#include "util/assert.hpp"

namespace scalpel {

PlanModel::PlanModel(const Graph& backbone,
                     const std::vector<ExitCandidate>& candidates,
                     SurgeryPlan plan, const AccuracyModel& acc,
                     const ComputeProfile& device,
                     const ComputeProfile& server, const LinkSpec& link,
                     const DifficultyModel& difficulty)
    : plan_(std::move(plan)), link_(link) {
  validate_policy(plan_.policy, candidates);
  const NodeId cut = plan_.partition_after;
  if (!plan_.device_only) {
    SCALPEL_REQUIRE(backbone.is_clean_cut(cut),
                    "partition_after must be a clean cut");
    upload_bytes_ = backbone.node(cut).out_shape.bytes();
    if (plan_.quantize_upload) {
      // INT8 payload plus the 4-byte scale (see kernels::QuantizedTensor).
      upload_bytes_ = upload_bytes_ / 4 + 4;
    }
  }

  // Walk the enabled exits in depth order, accumulating time on whichever
  // side of the cut each segment/head executes.
  double device_acc = 0.0;   // device time accumulated so far along the path
  double server_acc = 0.0;   // server time accumulated past the cut
  double device_flops_acc = 0.0;
  double server_flops_acc = 0.0;
  bool crossed = false;
  NodeId prev_attach = 0;
  double covered = 0.0;

  auto advance_to = [&](NodeId target) {
    // Adds segment (prev_attach, target] to the correct side(s), splitting
    // at the cut if it falls inside the segment.
    if (plan_.device_only || target <= cut) {
      device_acc +=
          LatencyModel::range_latency(backbone, prev_attach, target, device);
      device_flops_acc +=
          static_cast<double>(backbone.range_flops(prev_attach, target));
    } else if (prev_attach >= cut) {
      server_acc +=
          LatencyModel::range_latency(backbone, prev_attach, target, server);
      server_flops_acc +=
          static_cast<double>(backbone.range_flops(prev_attach, target));
      crossed = true;
    } else {
      device_acc +=
          LatencyModel::range_latency(backbone, prev_attach, cut, device);
      device_flops_acc +=
          static_cast<double>(backbone.range_flops(prev_attach, cut));
      server_acc +=
          LatencyModel::range_latency(backbone, cut, target, server);
      server_flops_acc +=
          static_cast<double>(backbone.range_flops(cut, target));
      crossed = true;
    }
    prev_attach = target;
  };

  for (const auto& choice : plan_.policy.exits) {
    const auto& cand = candidates[choice.candidate];
    advance_to(cand.attach);
    const bool head_on_server = crossed;
    const double head_time = LatencyModel::graph_latency(
        cand.head, head_on_server ? server : device);
    // Heads run for every task *reaching* this exit, so bake the head into
    // the running accumulator (tasks passing the exit also paid it).
    if (head_on_server) {
      server_acc += head_time;
      server_flops_acc += static_cast<double>(cand.head_flops);
    } else {
      device_acc += head_time;
      device_flops_acc += static_cast<double>(cand.head_flops);
    }
    ExitRow row;
    row.limit = acc.capability(cand.depth_fraction) * (1.0 - choice.theta);
    row.device_time = device_acc;
    row.server_time = server_acc;
    row.device_flops = device_flops_acc;
    row.server_flops = server_flops_acc;
    row.offloaded = crossed;
    row.correct_prob = std::min(
        acc.selective_ceiling,
        acc.conditional_accuracy(cand.depth_fraction, choice.theta) +
            cand.accuracy_bonus);
    if (row.offloaded && plan_.quantize_upload) {
      row.correct_prob = std::max(0.0, row.correct_prob - acc.int8_penalty);
    }
    rows_.push_back(row);
    covered = std::max(covered, row.limit);
  }
  advance_to(backbone.output());
  ExitRow final_row;
  final_row.limit = 1.0;
  final_row.device_time = device_acc;
  final_row.server_time = server_acc;
  final_row.device_flops = device_flops_acc;
  final_row.server_flops = server_flops_acc;
  final_row.offloaded = crossed;
  final_row.correct_prob = acc.a_max;
  if (final_row.offloaded && plan_.quantize_upload) {
    final_row.correct_prob =
        std::max(0.0, final_row.correct_prob - acc.int8_penalty);
  }
  rows_.push_back(final_row);

  // Analytical breakdown: integrate over the difficulty distribution (the
  // mass each exit captures is its interval's measure under the CDF).
  double prev_limit = 0.0;
  for (const auto& row : rows_) {
    const double hi = std::max(prev_limit, std::min(1.0, row.limit));
    const double mass = difficulty.cdf(hi) - difficulty.cdf(prev_limit);
    prev_limit = hi;
    if (mass <= 0.0) continue;
    const double upload =
        row.offloaded ? transfer_latency(upload_bytes_, link_.bandwidth,
                                         link_.rtt)
                      : 0.0;
    breakdown_.expected_latency +=
        mass * (row.device_time + upload + row.server_time);
    breakdown_.expected_accuracy += mass * row.correct_prob;
    breakdown_.expected_device_time += mass * row.device_time;
    breakdown_.expected_upload_time += mass * upload;
    breakdown_.expected_server_time += mass * row.server_time;
    breakdown_.device_time_m2 += mass * row.device_time * row.device_time;
    if (row.offloaded) {
      breakdown_.offload_prob += mass;
      breakdown_.server_time_cond_m1 += mass * row.server_time;
      breakdown_.server_time_cond_m2 +=
          mass * row.server_time * row.server_time;
    }
  }
  if (breakdown_.offload_prob > 0.0) {
    breakdown_.server_time_cond_m1 /= breakdown_.offload_prob;
    breakdown_.server_time_cond_m2 /= breakdown_.offload_prob;
  }
  breakdown_.upload_bytes = plan_.device_only ? 0 : upload_bytes_;
  prev_limit = 0.0;
  for (const auto& row : rows_) {
    const double hi = std::max(prev_limit, std::min(1.0, row.limit));
    const double mass = difficulty.cdf(hi) - difficulty.cdf(prev_limit);
    prev_limit = hi;
    if (mass <= 0.0) continue;
    breakdown_.expected_device_flops += mass * row.device_flops;
    breakdown_.expected_server_flops += mass * row.server_flops;
  }
}

TaskPhases PlanModel::phases_for(double difficulty) const {
  SCALPEL_REQUIRE(difficulty >= 0.0 && difficulty < 1.0,
                  "difficulty must be in [0, 1)");
  TaskPhases out;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const auto& row = rows_[i];
    if (difficulty < row.limit || i + 1 == rows_.size()) {
      out.device_time = row.device_time;
      out.server_time = row.server_time;
      out.offloaded = row.offloaded;
      out.upload_bytes = row.offloaded ? upload_bytes_ : 0;
      out.exit_index = (i + 1 == rows_.size()) ? -1 : static_cast<int>(i);
      out.correct_prob = row.correct_prob;
      return out;
    }
  }
  SCALPEL_REQUIRE(false, "unreachable: final row has limit 1.0");
}

}  // namespace scalpel
