#pragma once

#include <string>

namespace scalpel {
class Rng;

/// Distribution of input difficulty x in [0, 1): exits cover a difficulty
/// prefix, so the *mass* an exit captures is F(limit) under this
/// distribution. The default Uniform matches the base reproduction; the
/// skewed presets model workloads dominated by easy frames (static scenes)
/// or hard frames (cluttered scenes) — the "input complexity" axis the
/// multi-exit idea exploits.
///
/// Implemented as a Kumaraswamy distribution (Beta-like with closed-form
/// CDF/quantile): F(x) = 1 - (1 - x^a)^b.
class DifficultyModel {
 public:
  /// Uniform(0,1): a = b = 1.
  DifficultyModel() = default;
  DifficultyModel(double a, double b);

  /// P(X <= x) for x in [0, 1].
  double cdf(double x) const;
  /// Inverse CDF; u in [0, 1).
  double quantile(double u) const;
  /// Draw a difficulty in [0, 1).
  double sample(Rng& rng) const;

  double a() const { return a_; }
  double b() const { return b_; }
  bool is_uniform() const { return a_ == 1.0 && b_ == 1.0; }

  /// Presets: "uniform", "easy_heavy" (most mass at low difficulty),
  /// "hard_heavy" (most mass at high difficulty), "bimodal_easy" (sharper
  /// easy skew). Throws on unknown name.
  static DifficultyModel preset(const std::string& name);

 private:
  double a_ = 1.0;
  double b_ = 1.0;
};

}  // namespace scalpel
