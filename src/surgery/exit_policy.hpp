#pragma once

#include <cstddef>
#include <vector>

#include "nn/graph.hpp"
#include "profile/compute_profile.hpp"
#include "surgery/accuracy_model.hpp"
#include "surgery/difficulty.hpp"
#include "surgery/exit_candidates.hpp"

namespace scalpel {

/// One enabled exit: which candidate, and how aggressive. theta in [0, 1):
/// 0 fires on everything the exit can cover, ~1 fires on (almost) nothing.
struct ExitChoice {
  std::size_t candidate = 0;
  double theta = 0.3;
};

/// An ordered (by depth) set of enabled exits over a fixed candidate list.
/// The empty policy is the vanilla single-exit model.
struct ExitPolicy {
  std::vector<ExitChoice> exits;
};

/// Closed-form behaviour of a policy under the difficulty/accuracy model.
struct ExitStats {
  /// Unconditional probability of terminating at enabled exit i.
  std::vector<double> fire_prob;
  /// Probability of reaching enabled exit i (before its threshold test).
  std::vector<double> reach_prob;
  /// Probability of falling through to the backbone's final exit.
  double final_prob = 1.0;
  /// Expected top-1 accuracy across the input distribution.
  double expected_accuracy = 0.0;
  /// Expected FLOPs actually executed (backbone segments + heads).
  double expected_flops = 0.0;
};

/// Validates a policy against the candidate list: indices in range, strictly
/// increasing by candidate (hence by depth), thetas in [0, 1).
void validate_policy(const ExitPolicy& policy,
                     const std::vector<ExitCandidate>& candidates);

/// Evaluate a policy analytically. Exit i fires on difficulties up to
/// capability(d_i) * (1 - theta_i) not already absorbed by an earlier exit;
/// the captured probability mass is that interval's measure under
/// `difficulty` (Uniform by default).
ExitStats evaluate_policy(const Graph& backbone,
                          const std::vector<ExitCandidate>& candidates,
                          const ExitPolicy& policy, const AccuracyModel& acc,
                          const DifficultyModel& difficulty = {});

/// Expected single-machine execution latency of a policy on `profile`
/// (everything runs in place; no partition, no network).
double expected_policy_latency(const Graph& backbone,
                               const std::vector<ExitCandidate>& candidates,
                               const ExitPolicy& policy, const ExitStats& stats,
                               const ComputeProfile& profile);

}  // namespace scalpel
