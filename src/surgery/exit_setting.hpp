#pragma once

#include <vector>

#include "surgery/exit_policy.hpp"

namespace scalpel {

/// Configuration for exit-setting optimization: choose which candidate exits
/// to enable and each exit's threshold so that expected latency is minimized
/// subject to an expected-accuracy floor.
struct ExitSettingOptions {
  double min_accuracy = 0.0;  // constraint: E[accuracy] >= min_accuracy
  /// Threshold grid searched per enabled exit.
  std::vector<double> theta_grid = {0.0, 0.15, 0.30, 0.45, 0.60, 0.75};
  std::size_t max_exits = 4;  // at most this many enabled exits
  /// Coverage discretization for the DP (bins across [0, 1]).
  std::size_t coverage_bins = 100;
  /// Input-difficulty distribution the policy will face.
  DifficultyModel difficulty;
};

struct ExitSettingResult {
  ExitPolicy policy;
  ExitStats stats;
  double expected_latency = 0.0;
  bool feasible = false;  // false if no setting meets the accuracy floor
  std::size_t evaluations = 0;  // configurations examined (for scalability plots)
};

/// Exhaustive search over subsets x theta grid — exponential; the optimality
/// reference used in tests and in the scalability bench's small instances.
ExitSettingResult exhaustive_exit_setting(
    const Graph& backbone, const std::vector<ExitCandidate>& candidates,
    const AccuracyModel& acc, const ComputeProfile& profile,
    const ExitSettingOptions& opts);

/// Greedy marginal-improvement construction — fast, no optimality guarantee.
ExitSettingResult greedy_exit_setting(
    const Graph& backbone, const std::vector<ExitCandidate>& candidates,
    const AccuracyModel& acc, const ComputeProfile& profile,
    const ExitSettingOptions& opts);

/// Coverage-discretized dynamic program (the paper-style "exit setting
/// algorithm with lower time complexity"). Exploits that once the covered
/// difficulty mass entering a candidate is known, the candidate's latency and
/// accuracy contributions are independent of earlier choices. Maintains a
/// Pareto frontier over (accuracy, latency) per (candidate, coverage bin);
/// near-optimal up to coverage discretization.
ExitSettingResult dp_exit_setting(
    const Graph& backbone, const std::vector<ExitCandidate>& candidates,
    const AccuracyModel& acc, const ComputeProfile& profile,
    const ExitSettingOptions& opts);

/// Pre-priced per-candidate costs for the generalized DP. The joint
/// optimizer uses this to price backbone segments on whichever side of the
/// partition cut they execute, and to charge the upload across the cut to
/// every task still running there.
struct ExitCostTable {
  /// segment[i]: cost of the backbone stretch (candidate i-1, candidate i],
  /// paid by every task reaching candidate i (includes any upload crossing).
  std::vector<double> segment;
  /// head[i]: candidate i's head cost, paid by every task reaching it when
  /// the exit is enabled.
  std::vector<double> head;
  /// Cost of the stretch after the last candidate to the final exit.
  double tail = 0.0;
};

/// Expected cost of a policy under a cost table (same integration as
/// evaluate_policy's latency but with externally supplied prices).
double policy_cost(const std::vector<ExitCandidate>& candidates,
                   const ExitPolicy& policy, const ExitStats& stats,
                   const ExitCostTable& costs);

/// Generalized DP over an explicit cost table. `expected_latency` in the
/// result is the table cost of the chosen policy (exact, recomputed).
ExitSettingResult dp_exit_setting_costs(
    const Graph& backbone, const std::vector<ExitCandidate>& candidates,
    const AccuracyModel& acc, const ExitCostTable& costs,
    const ExitSettingOptions& opts);

}  // namespace scalpel
