#pragma once

#include <memory>
#include <vector>

#include "nn/executor.hpp"
#include "surgery/exit_policy.hpp"

namespace scalpel {

/// Executable multi-exit model: runs the real backbone kernels segment by
/// segment, evaluates each enabled exit head, and stops at the first head
/// whose top-1 softmax probability clears the exit's confidence threshold.
/// This is the "ground truth" runtime the analytical PlanModel abstracts;
/// examples and integration tests run it on real tensors.
class MultiExitRuntime {
 public:
  /// theta in [0,1) maps to a softmax-probability threshold 0.5 + 0.5*theta
  /// (theta 0 accepts anything better than a coin flip; theta -> 1 demands
  /// near-certainty).
  static double prob_threshold(double theta);

  MultiExitRuntime(const Graph& backbone,
                   std::vector<ExitCandidate> candidates, ExitPolicy policy,
                   std::uint64_t weight_seed, ThreadPool* pool = nullptr);

  struct Result {
    Tensor probs;          // class distribution of the exit taken
    int exit_index = -1;   // enabled-exit index; -1 = final exit
    double confidence = 0.0;  // top-1 probability at the exit taken
    std::int64_t executed_flops = 0;  // backbone + heads actually run
  };

  Result infer(const Tensor& input) const;

  const ExitPolicy& policy() const { return policy_; }
  std::size_t enabled_exits() const { return policy_.exits.size(); }

 private:
  const Graph* backbone_;
  std::vector<ExitCandidate> candidates_;
  ExitPolicy policy_;
  Executor backbone_exec_;
  std::vector<std::unique_ptr<Executor>> head_execs_;  // per enabled exit
};

}  // namespace scalpel
