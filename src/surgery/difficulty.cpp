#include "surgery/difficulty.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace scalpel {

DifficultyModel::DifficultyModel(double a, double b) : a_(a), b_(b) {
  SCALPEL_REQUIRE(a > 0.0 && b > 0.0,
                  "difficulty shape parameters must be positive");
}

double DifficultyModel::cdf(double x) const {
  SCALPEL_REQUIRE(x >= 0.0 && x <= 1.0, "difficulty must be in [0, 1]");
  if (is_uniform()) return x;
  return 1.0 - std::pow(1.0 - std::pow(x, a_), b_);
}

double DifficultyModel::quantile(double u) const {
  SCALPEL_REQUIRE(u >= 0.0 && u < 1.0, "quantile u must be in [0, 1)");
  if (is_uniform()) return u;
  return std::pow(1.0 - std::pow(1.0 - u, 1.0 / b_), 1.0 / a_);
}

double DifficultyModel::sample(Rng& rng) const {
  return quantile(rng.uniform());
}

DifficultyModel DifficultyModel::preset(const std::string& name) {
  if (name == "uniform") return DifficultyModel();
  // a<1 or b>1 push mass toward 0 (easy); a>1, b<1 push toward 1 (hard).
  if (name == "easy_heavy") return DifficultyModel(1.0, 2.5);
  if (name == "hard_heavy") return DifficultyModel(2.5, 1.0);
  if (name == "bimodal_easy") return DifficultyModel(0.5, 3.0);
  SCALPEL_REQUIRE(false, "unknown difficulty preset: " + name);
}

}  // namespace scalpel
