#pragma once

#include <string>

namespace scalpel {

/// Calibrated analytic substitute for trained early-exit accuracy curves.
///
/// The paper measures, per exit, (a) the accuracy of the exit head and
/// (b) how often inputs clear its confidence threshold. Published multi-exit
/// measurements (BranchyNet, SPINN, LEIME) consistently show:
///   - exit accuracy grows with depth and saturates:  A(d) = A_max * s(d)
///   - deeper exits confidently cover more inputs:     cap(d) = d^gamma
///   - raising the threshold trades coverage for conditional accuracy
///     (selective prediction).
/// We encode exactly those three shapes, with A_max set per model to its
/// well-known top-1 figure.
struct AccuracyModel {
  double a_max = 0.75;        // final-exit accuracy
  double saturation_k = 3.0;  // curve steepness of A(d)
  double cap_gamma = 0.6;     // coverage growth with depth
  double selective_ceiling = 0.98;  // conditional accuracy cap at theta -> 1
  /// Accuracy cost of shipping an INT8-quantized activation across the
  /// partition cut (applies to offloaded tasks only). Literature reports
  /// sub-1%% top-1 drops for activation-only PTQ.
  double int8_penalty = 0.008;

  /// Standalone accuracy of an exit at depth fraction d in (0, 1].
  double accuracy_at(double depth_fraction) const;

  /// Fraction of the input difficulty mass an exit at depth d can cover at
  /// threshold 0 (maximally aggressive).
  double capability(double depth_fraction) const;

  /// Conditional accuracy of an exit on the inputs it fires on, given the
  /// normalized threshold theta in [0, 1): higher theta means the exit only
  /// answers when very confident.
  double conditional_accuracy(double depth_fraction, double theta) const;

  /// Per-model calibration; unknown names get a generic 0.75 model.
  static AccuracyModel for_model(const std::string& model_name);
};

}  // namespace scalpel
