#pragma once

#include <vector>

#include "surgery/difficulty.hpp"
#include "surgery/exit_policy.hpp"
#include "surgery/partition.hpp"

namespace scalpel {

/// The full "model surgery" decision for one device/model pair: which exits
/// are enabled (with thresholds) and where the backbone is cut between the
/// device and its edge server.
struct SurgeryPlan {
  ExitPolicy policy;
  /// Clean-cut node after which execution moves to the server. Ignored when
  /// device_only is true.
  NodeId partition_after = 0;
  bool device_only = false;
  /// Extension: ship the cut activation as symmetric INT8 (1/4 the bytes,
  /// small accuracy penalty on offloaded tasks). See kernels::quantize_int8
  /// for the executable counterpart.
  bool quantize_upload = false;
};

/// Expected per-task behaviour of a SurgeryPlan under given device/server
/// capability and link. All times in seconds.
struct PlanBreakdown {
  double expected_latency = 0.0;
  double expected_accuracy = 0.0;
  double offload_prob = 0.0;         // P(task crosses the cut)
  double expected_device_time = 0.0;
  double expected_upload_time = 0.0;
  double expected_server_time = 0.0;
  std::int64_t upload_bytes = 0;     // activation payload at the cut
  double expected_device_flops = 0.0;
  double expected_server_flops = 0.0;
  /// Second moment of the on-device service time (all tasks) — feeds the
  /// M/G/1 device-queue model.
  double device_time_m2 = 0.0;
  /// Conditional first/second moments of the full-speed server service time
  /// given the task offloads — feed the M/G/1 server-queue model.
  double server_time_cond_m1 = 0.0;
  double server_time_cond_m2 = 0.0;
};

/// Per-task realization for the discrete-event simulator: sampled from the
/// same model the analytical breakdown integrates over.
struct TaskPhases {
  double device_time = 0.0;
  double server_time = 0.0;     // at the *reference* server share
  std::int64_t upload_bytes = 0;  // 0 when the task exits on-device
  bool offloaded = false;
  int exit_index = -1;          // enabled-exit index; -1 = final exit
  double correct_prob = 0.0;
};

/// Compiled view of a SurgeryPlan: precomputes per-exit coverage intervals
/// and phase latencies so both the analytical evaluator and the simulator
/// draw from one set of numbers. The canonical objective evaluator for the
/// joint optimizer and every baseline.
class PlanModel {
 public:
  /// `server` must already reflect the compute share granted to this device
  /// (use ComputeProfile::scaled). The referenced backbone/candidates must
  /// outlive the PlanModel.
  PlanModel(const Graph& backbone, const std::vector<ExitCandidate>& candidates,
            SurgeryPlan plan, const AccuracyModel& acc,
            const ComputeProfile& device, const ComputeProfile& server,
            const LinkSpec& link, const DifficultyModel& difficulty = {});

  const PlanBreakdown& breakdown() const { return breakdown_; }
  const SurgeryPlan& plan() const { return plan_; }

  /// Phase durations for a task of the given difficulty in [0, 1).
  TaskPhases phases_for(double difficulty) const;

  /// Bernoulli-correctness probability marginalized over difficulty.
  double expected_accuracy() const { return breakdown_.expected_accuracy; }

 private:
  struct ExitRow {
    double limit = 0.0;        // difficulty coverage boundary
    double device_time = 0.0;  // total on-device time if exiting here
    double server_time = 0.0;  // server time if exiting here (0 if on-device)
    double device_flops = 0.0;
    double server_flops = 0.0;
    bool offloaded = false;
    double correct_prob = 0.0;
  };

  SurgeryPlan plan_;
  LinkSpec link_;
  std::vector<ExitRow> rows_;  // enabled exits in depth order, then final
  std::int64_t upload_bytes_ = 0;
  PlanBreakdown breakdown_;
};

}  // namespace scalpel
