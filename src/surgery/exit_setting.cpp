#include "surgery/exit_setting.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "profile/latency_model.hpp"
#include "util/assert.hpp"

namespace scalpel {
namespace {

ExitSettingResult make_result(const Graph& backbone,
                              const std::vector<ExitCandidate>& candidates,
                              const AccuracyModel& acc,
                              const ComputeProfile& profile,
                              const DifficultyModel& difficulty,
                              ExitPolicy policy, std::size_t evaluations) {
  ExitSettingResult r;
  r.policy = std::move(policy);
  r.stats = evaluate_policy(backbone, candidates, r.policy, acc, difficulty);
  r.expected_latency = expected_policy_latency(backbone, candidates, r.policy,
                                               r.stats, profile);
  r.feasible = true;
  r.evaluations = evaluations;
  return r;
}

}  // namespace

ExitSettingResult exhaustive_exit_setting(
    const Graph& backbone, const std::vector<ExitCandidate>& candidates,
    const AccuracyModel& acc, const ComputeProfile& profile,
    const ExitSettingOptions& opts) {
  ExitPolicy best;
  double best_latency = std::numeric_limits<double>::infinity();
  bool found = false;
  std::size_t evaluations = 0;

  ExitPolicy current;
  // Depth-first enumeration: at each candidate, either skip it or enable it
  // with each theta in the grid.
  auto recurse = [&](auto&& self, std::size_t idx) -> void {
    ++evaluations;
    const ExitStats stats =
        evaluate_policy(backbone, candidates, current, acc, opts.difficulty);
    if (stats.expected_accuracy >= opts.min_accuracy) {
      const double latency = expected_policy_latency(backbone, candidates,
                                                     current, stats, profile);
      if (latency < best_latency) {
        best_latency = latency;
        best = current;
        found = true;
      }
    }
    if (idx >= candidates.size() || current.exits.size() >= opts.max_exits) {
      return;
    }
    for (std::size_t c = idx; c < candidates.size(); ++c) {
      for (double theta : opts.theta_grid) {
        current.exits.push_back(ExitChoice{c, theta});
        self(self, c + 1);
        current.exits.pop_back();
      }
    }
  };
  recurse(recurse, 0);

  if (!found) {
    ExitSettingResult r;
    r.evaluations = evaluations;
    return r;
  }
  auto r = make_result(backbone, candidates, acc, profile, opts.difficulty,
                       std::move(best), evaluations);
  return r;
}

ExitSettingResult greedy_exit_setting(
    const Graph& backbone, const std::vector<ExitCandidate>& candidates,
    const AccuracyModel& acc, const ComputeProfile& profile,
    const ExitSettingOptions& opts) {
  std::size_t evaluations = 0;
  auto eval = [&](const ExitPolicy& p, double* latency) {
    ++evaluations;
    const ExitStats stats =
        evaluate_policy(backbone, candidates, p, acc, opts.difficulty);
    *latency = expected_policy_latency(backbone, candidates, p, stats,
                                       profile);
    return stats.expected_accuracy >= opts.min_accuracy;
  };

  ExitPolicy policy;  // empty = vanilla model
  double policy_latency = 0.0;
  const bool base_feasible = eval(policy, &policy_latency);
  if (!base_feasible) {
    // The vanilla model itself violates the floor (min_accuracy > a_max):
    // no exit setting can fix that.
    ExitSettingResult r;
    r.evaluations = evaluations;
    return r;
  }

  while (policy.exits.size() < opts.max_exits) {
    ExitPolicy best_next = policy;
    double best_latency = policy_latency;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      const bool used =
          std::any_of(policy.exits.begin(), policy.exits.end(),
                      [c](const ExitChoice& e) { return e.candidate == c; });
      if (used) continue;
      for (double theta : opts.theta_grid) {
        ExitPolicy trial = policy;
        // Insert keeping depth order.
        auto it = std::find_if(
            trial.exits.begin(), trial.exits.end(),
            [c](const ExitChoice& e) { return e.candidate > c; });
        trial.exits.insert(it, ExitChoice{c, theta});
        double latency = 0.0;
        if (eval(trial, &latency) && latency < best_latency) {
          best_latency = latency;
          best_next = std::move(trial);
        }
      }
    }
    if (best_latency >= policy_latency) break;  // no improving addition
    policy = std::move(best_next);
    policy_latency = best_latency;
  }
  return make_result(backbone, candidates, acc, profile, opts.difficulty,
                     std::move(policy), evaluations);
}

double policy_cost(const std::vector<ExitCandidate>& candidates,
                   const ExitPolicy& policy, const ExitStats& stats,
                   const ExitCostTable& costs) {
  SCALPEL_REQUIRE(costs.segment.size() == candidates.size() &&
                      costs.head.size() == candidates.size(),
                  "cost table arity mismatch");
  // reach(candidate c) for candidates between enabled exits equals the reach
  // of the next enabled exit, so walk candidates accumulating reach.
  double cost = 0.0;
  double reach = 1.0;
  std::size_t enabled_pos = 0;
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    cost += reach * costs.segment[c];
    if (enabled_pos < policy.exits.size() &&
        policy.exits[enabled_pos].candidate == c) {
      cost += reach * costs.head[c];
      reach -= stats.fire_prob[enabled_pos];
      ++enabled_pos;
    }
  }
  cost += reach * costs.tail;
  return cost;
}

ExitSettingResult dp_exit_setting(
    const Graph& backbone, const std::vector<ExitCandidate>& candidates,
    const AccuracyModel& acc, const ComputeProfile& profile,
    const ExitSettingOptions& opts) {
  ExitCostTable costs;
  const std::size_t n = candidates.size();
  costs.segment.resize(n, 0.0);
  costs.head.resize(n, 0.0);
  NodeId prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    costs.segment[i] = LatencyModel::range_latency(
        backbone, prev, candidates[i].attach, profile);
    costs.head[i] = LatencyModel::graph_latency(candidates[i].head, profile);
    prev = candidates[i].attach;
  }
  costs.tail = LatencyModel::range_latency(
      backbone, n ? candidates[n - 1].attach : 0, backbone.output(), profile);
  ExitSettingResult r =
      dp_exit_setting_costs(backbone, candidates, acc, costs, opts);
  if (r.feasible) {
    // Report the latency through the standard single-profile evaluator so
    // callers can compare against exhaustive/greedy results directly.
    r.expected_latency = expected_policy_latency(backbone, candidates,
                                                 r.policy, r.stats, profile);
  }
  return r;
}

ExitSettingResult dp_exit_setting_costs(
    const Graph& backbone, const std::vector<ExitCandidate>& candidates,
    const AccuracyModel& acc, const ExitCostTable& costs,
    const ExitSettingOptions& opts) {
  SCALPEL_REQUIRE(opts.coverage_bins >= 2, "DP needs >= 2 coverage bins");
  SCALPEL_REQUIRE(costs.segment.size() == candidates.size() &&
                      costs.head.size() == candidates.size(),
                  "cost table arity mismatch");
  const std::size_t bins = opts.coverage_bins + 1;  // bin b = coverage b/bins
  const std::size_t n = candidates.size();
  const std::vector<double>& segment = costs.segment;
  const std::vector<double>& head = costs.head;
  const double tail = costs.tail;

  // Labels are PODs: the decision trace lives in a shared parent-pointer
  // arena (`steps`) and only the winning label's chain is materialized at
  // the end. The old per-label std::vector<ExitChoice> trace made every
  // skip/enable transition a heap allocation — the DP's dominant cost.
  struct Label {
    double accuracy;  // accumulated accuracy mass
    double latency;   // accumulated expected latency
    std::size_t exit_count;
    std::int32_t step = -1;  // index into `steps`; -1 = no exits enabled
  };
  struct Step {
    std::int32_t parent;
    ExitChoice choice;
  };
  std::vector<Step> steps;
  // frontier[b] = Pareto set of labels with coverage bin b.
  std::vector<std::vector<Label>> frontier(bins);
  std::vector<std::vector<Label>> next(bins);  // reused across candidates
  frontier[0].push_back(Label{0.0, 0.0, 0, -1});
  std::size_t evaluations = 0;

  auto dominate_insert = [](std::vector<Label>& set,
                            const Label& cand_label) {
    for (const auto& l : set) {
      if (l.accuracy >= cand_label.accuracy - 1e-12 &&
          l.latency <= cand_label.latency + 1e-12) {
        return false;  // dominated
      }
    }
    std::erase_if(set, [&](const Label& l) {
      return cand_label.accuracy >= l.accuracy - 1e-12 &&
             cand_label.latency <= l.latency + 1e-12;
    });
    set.push_back(cand_label);
    return true;
  };

  auto coverage_of_bin = [&](std::size_t b) {
    return static_cast<double>(b) / static_cast<double>(bins - 1);
  };
  auto bin_of_coverage = [&](double c) {
    // Round to nearest: unbiased over the sweep (the final selection applies
    // a one-bin feasibility margin and the result is re-verified exactly).
    const auto b = static_cast<std::size_t>(
        std::floor(c * static_cast<double>(bins - 1) + 0.5));
    return std::min(b, bins - 1);
  };

  // Bin-indexed difficulty mass and per-(candidate, theta) firing windows
  // are loop invariants; hoisting them keeps the inner loop free of
  // transcendental calls without changing a single computed value.
  std::vector<double> bin_cdf(bins);
  std::vector<double> bin_reach(bins);
  for (std::size_t b = 0; b < bins; ++b) {
    bin_cdf[b] = opts.difficulty.cdf(coverage_of_bin(b));
    bin_reach[b] = 1.0 - bin_cdf[b];
  }
  std::vector<double> theta_limit(opts.theta_grid.size());
  std::vector<double> theta_correct(opts.theta_grid.size());

  for (std::size_t i = 0; i < n; ++i) {
    for (auto& set : next) set.clear();
    const double cap = acc.capability(candidates[i].depth_fraction);
    for (std::size_t t = 0; t < opts.theta_grid.size(); ++t) {
      const double theta = opts.theta_grid[t];
      theta_limit[t] = cap * (1.0 - theta);
      theta_correct[t] =
          std::min(acc.selective_ceiling,
                   acc.conditional_accuracy(candidates[i].depth_fraction,
                                            theta) +
                       candidates[i].accuracy_bonus);
    }
    for (std::size_t b = 0; b < bins; ++b) {
      for (const auto& label : frontier[b]) {
        const double covered = coverage_of_bin(b);
        // Reach is the probability mass above the covered difficulty.
        const double reach = bin_reach[b];
        // Everyone still running pays the backbone segment to candidate i.
        const double base_latency = label.latency + reach * segment[i];

        // Option 1: skip candidate i.
        {
          Label skip = label;
          skip.latency = base_latency;
          dominate_insert(next[b], skip);
          ++evaluations;
        }
        // Option 2: enable with each theta.
        if (label.exit_count < opts.max_exits) {
          for (std::size_t t = 0; t < opts.theta_grid.size(); ++t) {
            const double limit = theta_limit[t];
            const double fire =
                std::max(0.0, opts.difficulty.cdf(std::max(covered, limit)) -
                                  bin_cdf[b]);
            Label en = label;
            en.latency = base_latency + reach * head[i];
            en.accuracy += fire * theta_correct[t];
            en.exit_count += 1;
            en.step = static_cast<std::int32_t>(steps.size());
            const std::size_t nb = bin_of_coverage(std::max(covered, limit));
            if (dominate_insert(next[nb], en)) {
              steps.push_back(
                  Step{label.step, ExitChoice{i, opts.theta_grid[t]}});
            }
            ++evaluations;
          }
        }
      }
    }
    frontier.swap(next);
  }

  // Terminal: tasks still running pay the tail segment and score a_max.
  const Label* best = nullptr;
  double best_latency = std::numeric_limits<double>::infinity();
  std::vector<Label> finals;
  for (std::size_t b = 0; b < bins; ++b) {
    for (const auto& label : frontier[b]) {
      const double reach = bin_reach[b];
      Label f = label;
      f.latency += reach * tail;
      f.accuracy += reach * acc.a_max;
      finals.push_back(f);
    }
  }
  // Coverage discretization can overstate a label's accuracy by up to one
  // bin's worth of mass; select with that margin, then verify exactly.
  const double margin = 1.0 / static_cast<double>(bins - 1);
  for (const auto& f : finals) {
    if (f.accuracy >= opts.min_accuracy + margin && f.latency < best_latency) {
      best_latency = f.latency;
      best = &f;
    }
  }
  if (best == nullptr) {
    // Margin may have excluded everything; retry without it (repair below
    // restores exact feasibility).
    for (const auto& f : finals) {
      if (f.accuracy >= opts.min_accuracy && f.latency < best_latency) {
        best_latency = f.latency;
        best = &f;
      }
    }
  }
  if (best == nullptr) {
    ExitSettingResult r;
    r.evaluations = evaluations;
    return r;
  }
  ExitSettingResult r;
  // Materialize the winning label's decision chain from the arena. Steps were
  // appended in increasing candidate order, so reversing the parent walk
  // reproduces the depth-ordered trace the old per-label vectors carried.
  for (std::int32_t id = best->step; id >= 0;
       id = steps[static_cast<std::size_t>(id)].parent) {
    r.policy.exits.push_back(steps[static_cast<std::size_t>(id)].choice);
  }
  std::reverse(r.policy.exits.begin(), r.policy.exits.end());
  r.stats = evaluate_policy(backbone, candidates, r.policy, acc,
                            opts.difficulty);
  // Repair: if exact accuracy still misses the floor, drop the shallowest
  // (least accurate) exits until it holds.
  while (r.stats.expected_accuracy < opts.min_accuracy - 1e-12 &&
         !r.policy.exits.empty()) {
    r.policy.exits.erase(r.policy.exits.begin());
    r.stats = evaluate_policy(backbone, candidates, r.policy, acc,
                              opts.difficulty);
  }
  if (r.stats.expected_accuracy < opts.min_accuracy - 1e-12) {
    r.evaluations = evaluations;
    return r;  // even the vanilla model misses the floor
  }
  r.expected_latency = policy_cost(candidates, r.policy, r.stats, costs);

  // Local polish with exact evaluation: the coverage discretization biases
  // the DP toward conservative thetas; re-tuning each enabled exit's theta
  // (and trying removal) against the exact objective recovers most of the
  // residual gap at negligible cost.
  bool improved = true;
  for (int round = 0; round < 3 && improved; ++round) {
    improved = false;
    // Insertion moves: try enabling each unused candidate.
    if (r.policy.exits.size() < opts.max_exits) {
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        const bool used = std::any_of(
            r.policy.exits.begin(), r.policy.exits.end(),
            [c](const ExitChoice& e) { return e.candidate == c; });
        if (used) continue;
        bool inserted = false;
        for (double theta : opts.theta_grid) {
          ExitPolicy trial = r.policy;
          auto it = std::find_if(
              trial.exits.begin(), trial.exits.end(),
              [c](const ExitChoice& e) { return e.candidate > c; });
          trial.exits.insert(it, ExitChoice{c, theta});
          const auto stats = evaluate_policy(backbone, candidates, trial, acc,
                                             opts.difficulty);
          ++evaluations;
          if (stats.expected_accuracy < opts.min_accuracy - 1e-12) continue;
          const double cost = policy_cost(candidates, trial, stats, costs);
          if (cost < r.expected_latency - 1e-15) {
            r.policy = std::move(trial);
            r.stats = stats;
            r.expected_latency = cost;
            improved = true;
            inserted = true;
            break;  // candidate c is now enabled; theta tuning follows later
          }
        }
        if (inserted && r.policy.exits.size() >= opts.max_exits) break;
      }
    }
    for (std::size_t e = 0; e < r.policy.exits.size(); ++e) {
      // Theta re-tuning.
      for (double theta : opts.theta_grid) {
        if (theta == r.policy.exits[e].theta) continue;
        ExitPolicy trial = r.policy;
        trial.exits[e].theta = theta;
        const auto stats = evaluate_policy(backbone, candidates, trial, acc,
                                           opts.difficulty);
        ++evaluations;
        if (stats.expected_accuracy < opts.min_accuracy - 1e-12) continue;
        const double cost = policy_cost(candidates, trial, stats, costs);
        if (cost < r.expected_latency - 1e-15) {
          r.policy = std::move(trial);
          r.stats = stats;
          r.expected_latency = cost;
          improved = true;
        }
      }
      // Removal.
      {
        ExitPolicy trial = r.policy;
        trial.exits.erase(trial.exits.begin() +
                          static_cast<std::ptrdiff_t>(e));
        const auto stats = evaluate_policy(backbone, candidates, trial, acc,
                                           opts.difficulty);
        ++evaluations;
        if (stats.expected_accuracy >= opts.min_accuracy - 1e-12) {
          const double cost = policy_cost(candidates, trial, stats, costs);
          if (cost < r.expected_latency - 1e-15) {
            r.policy = std::move(trial);
            r.stats = stats;
            r.expected_latency = cost;
            improved = true;
            if (r.policy.exits.empty()) break;
          }
        }
      }
    }
  }

  r.feasible = true;
  r.evaluations = evaluations;
  return r;
}

}  // namespace scalpel
