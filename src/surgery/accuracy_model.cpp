#include "surgery/accuracy_model.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace scalpel {

double AccuracyModel::accuracy_at(double depth_fraction) const {
  SCALPEL_REQUIRE(depth_fraction > 0.0 && depth_fraction <= 1.0,
                  "depth fraction must be in (0, 1]");
  // Saturating exponential normalized so accuracy_at(1) == a_max.
  const double s = (1.0 - std::exp(-saturation_k * depth_fraction)) /
                   (1.0 - std::exp(-saturation_k));
  return a_max * s;
}

double AccuracyModel::capability(double depth_fraction) const {
  SCALPEL_REQUIRE(depth_fraction > 0.0 && depth_fraction <= 1.0,
                  "depth fraction must be in (0, 1]");
  return std::pow(depth_fraction, cap_gamma);
}

double AccuracyModel::conditional_accuracy(double depth_fraction,
                                           double theta) const {
  SCALPEL_REQUIRE(theta >= 0.0 && theta < 1.0, "theta must be in [0, 1)");
  const double base = accuracy_at(depth_fraction);
  // Selective-prediction bonus: restricting to confident inputs moves the
  // conditional accuracy toward the ceiling, linearly in theta.
  return base + (selective_ceiling - base) * theta;
}

AccuracyModel AccuracyModel::for_model(const std::string& model_name) {
  AccuracyModel m;
  if (model_name == "lenet5") {
    m.a_max = 0.992;
    m.saturation_k = 4.0;
  } else if (model_name == "alexnet") {
    m.a_max = 0.565;
    m.saturation_k = 2.5;
  } else if (model_name == "vgg16") {
    m.a_max = 0.715;
    m.saturation_k = 3.0;
  } else if (model_name == "resnet18") {
    m.a_max = 0.698;
    m.saturation_k = 3.0;
  } else if (model_name == "mobilenet_v1") {
    m.a_max = 0.706;
    m.saturation_k = 3.2;
  } else if (model_name == "tiny_yolo") {
    m.a_max = 0.571;  // mAP treated as the accuracy figure
    m.saturation_k = 2.8;
  } else if (model_name == "tiny_cnn") {
    m.a_max = 0.80;
    m.saturation_k = 3.5;
  }
  return m;
}

}  // namespace scalpel
