#pragma once

#include <cstdint>
#include <vector>

#include "nn/graph.hpp"

namespace scalpel {

/// One place where an early-exit head can be grafted onto a backbone. The
/// head is a standalone Graph whose input node matches the attach point's
/// activation, so the (backbone prefix, head) pair executes compositionally.
struct ExitCandidate {
  NodeId attach = -1;          // backbone node the head hangs off
  double depth_fraction = 0.0;  // prefix FLOPs / total FLOPs at the attach
  Graph head;                  // classifier head (style-dependent)
  std::int64_t head_flops = 0;
  /// Additive conditional-accuracy bonus of this head over the light
  /// baseline (conv heads extract more from the same activation). Clamped
  /// to the model's selective ceiling during evaluation.
  double accuracy_bonus = 0.0;
};

/// Classifier-head architecture grafted at an exit.
enum class ExitHeadStyle {
  /// Global-average pool -> FC -> softmax. Near-free, the BranchyNet
  /// default and this repo's base configuration.
  kLight,
  /// 3x3 conv (128ch) -> gavg -> FC -> softmax. ~1.5% conditional-accuracy
  /// bonus for a modest per-exit compute cost.
  kConv,
};

struct ExitCandidateOptions {
  std::int64_t num_classes = 1000;
  ExitHeadStyle head_style = ExitHeadStyle::kLight;
  /// Candidates must be at least this far apart in depth fraction.
  double min_spacing = 0.05;
  /// Ignore attach points deeper than this (an exit at 97% depth saves
  /// nothing over the final exit).
  double max_depth = 0.95;
  std::size_t max_candidates = 8;
};

/// Enumerates clean cuts of the backbone and synthesizes a classifier head at
/// each, subject to spacing/depth limits. Candidates are in depth order.
std::vector<ExitCandidate> find_exit_candidates(
    const Graph& backbone, const ExitCandidateOptions& opts = {});

/// Builds the classifier head for an activation shape (CHW: global-average
/// pool then FC; flat: FC directly). kConv prepends a 3x3 conv stage on CHW
/// attach points (flat attach points fall back to the light head).
Graph make_exit_head(const Shape& attach_shape, std::int64_t num_classes,
                     ExitHeadStyle style = ExitHeadStyle::kLight);

}  // namespace scalpel
