#pragma once

#include <vector>

#include "nn/graph.hpp"
#include "profile/compute_profile.hpp"

namespace scalpel {

/// A device/server split of a (single-exit) model across one clean cut.
struct PartitionChoice {
  /// Cut after this node; -1 means "execute everything on the server"
  /// conceptually, but in practice the input node (id 0) is the earliest cut
  /// (raw input is uploaded). `device_only` marks the no-offload option.
  NodeId cut_after = 0;
  bool device_only = false;
  double device_time = 0.0;
  double upload_time = 0.0;
  double server_time = 0.0;
  double total() const { return device_time + upload_time + server_time; }
};

/// Link description for partitioning decisions.
struct LinkSpec {
  double bandwidth = 0.0;  // bytes/s granted to this task class
  double rtt = 0.0;        // fixed one-way setup latency per transfer
};

/// Neurosurgeon-style optimal partition: evaluate every clean cut plus the
/// device-only option, return the minimum-latency choice. O(cuts).
PartitionChoice optimal_partition(const Graph& model,
                                  const ComputeProfile& device,
                                  const ComputeProfile& server,
                                  const LinkSpec& link);

/// Latency of every option (clean cuts in depth order, then device-only
/// last) — the raw series behind the bandwidth-sweep figure.
std::vector<PartitionChoice> partition_curve(const Graph& model,
                                             const ComputeProfile& device,
                                             const ComputeProfile& server,
                                             const LinkSpec& link);

}  // namespace scalpel
