#pragma once

#include <cstdint>

namespace scalpel::perf {

/// Heap-allocation counting for the perf harness. The counting operator
/// new/delete replacements live in alloc_hook.cpp, which is built as a CMake
/// OBJECT library (scalpel_alloc_hook) and linked only into binaries that
/// opt in — replacement operators in a static-archive member would be
/// silently elided as unreferenced, and unconditionally counting every
/// allocation in every binary would be wrong anyway.
///
/// Binaries without the hook see alloc_hook_linked() == false and report
/// allocations as unavailable rather than as zero.

/// Total operator-new invocations so far (0 when the hook isn't linked).
std::uint64_t alloc_count() noexcept;

/// True when the counting operator new/delete are present in this binary.
bool alloc_hook_linked() noexcept;

/// Called by the hook's static initializer; not for general use.
void register_alloc_counter(std::uint64_t (*counter)() noexcept) noexcept;

}  // namespace scalpel::perf
