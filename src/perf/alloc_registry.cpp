// Accessor side of the allocation hook (see alloc_hook.hpp): always linked
// via scalpel_perf, reads whatever counter the optional OBJECT-library hook
// registered at startup.

#include "perf/alloc_hook.hpp"

#include <atomic>

namespace scalpel::perf {
namespace {

std::atomic<std::uint64_t (*)() noexcept> g_counter{nullptr};

}  // namespace

void register_alloc_counter(std::uint64_t (*counter)() noexcept) noexcept {
  g_counter.store(counter, std::memory_order_release);
}

bool alloc_hook_linked() noexcept {
  return g_counter.load(std::memory_order_acquire) != nullptr;
}

std::uint64_t alloc_count() noexcept {
  auto* fn = g_counter.load(std::memory_order_acquire);
  return fn ? fn() : 0;
}

}  // namespace scalpel::perf
