// Counting replacements for the global allocation functions. Built as an
// OBJECT library so linking is an explicit per-binary opt-in (see
// alloc_hook.hpp). Only news are counted — the harness divides news by
// events, and every new has a matching delete anyway.

#include "perf/alloc_hook.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocs{0};

std::uint64_t read_allocs() noexcept {
  return g_allocs.load(std::memory_order_relaxed);
}

// Publishes the counter through the accessor in the scalpel_perf library.
// operator new may run before this initializer (other globals allocating);
// those calls still count — only the accessor registration is deferred.
const bool g_registered =
    (scalpel::perf::register_alloc_counter(&read_allocs), true);

void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* counted_alloc(std::size_t n, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   n ? n : static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_alloc(n, a);
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_alloc(n, a);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
