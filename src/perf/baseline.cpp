#include "perf/baseline.hpp"

#include <cmath>
#include <cstdio>

#include "perf/simcore_bench.hpp"
#include "util/assert.hpp"

namespace scalpel::perf {
namespace {

double finite_positive(const Json& obj, const std::string& key) {
  SCALPEL_REQUIRE(obj.contains(key),
                  "simcore report is missing a required key");
  const double v = obj.at(key).as_number();
  SCALPEL_REQUIRE(std::isfinite(v) && v > 0.0,
                  "simcore report value must be finite and positive");
  return v;
}

}  // namespace

void validate_simcore_report(const Json& report) {
  SCALPEL_REQUIRE(report.is_object(), "simcore report must be an object");
  SCALPEL_REQUIRE(report.contains("bench") &&
                      report.at("bench").as_string() == "simcore",
                  "not a BENCH_simcore report");
  SCALPEL_REQUIRE(report.contains("schema_version") &&
                      report.at("schema_version").as_int() ==
                          kSimcoreSchemaVersion,
                  "simcore report schema_version mismatch");

  SCALPEL_REQUIRE(report.contains("build"), "report is missing build info");
  const Json& build = report.at("build");
  for (const char* key : {"optimized", "sanitized", "unoptimized"}) {
    SCALPEL_REQUIRE(build.contains(key), "build info is missing a flag");
    build.at(key).as_bool();  // kind check
  }
  SCALPEL_REQUIRE(build.contains("compiler") && build.contains("cpu"),
                  "build info is missing compiler/cpu strings");

  SCALPEL_REQUIRE(report.contains("workload"),
                  "report is missing the workload definition");
  const Json& work = report.at("workload");
  finite_positive(work, "devices");
  finite_positive(work, "servers");
  finite_positive(work, "arrival_rate");
  finite_positive(work, "horizon_seconds");
  SCALPEL_REQUIRE(work.contains("sim_seed") && work.contains("cluster_seed"),
                  "workload is missing its seeds");
  SCALPEL_REQUIRE(work.contains("event_queue"),
                  "workload is missing the event-queue choice");
  SCALPEL_REQUIRE(work.contains("shards") &&
                      work.at("shards").as_number() >= 0.0,
                  "workload is missing the shard count");

  SCALPEL_REQUIRE(report.contains("results"), "report is missing results");
  const Json& results = report.at("results");
  SCALPEL_REQUIRE(results.contains("des") && results.contains("solver"),
                  "results must cover the DES and the solver");
  const Json& des = results.at("des");
  finite_positive(des, "events");
  finite_positive(des, "best_seconds");
  finite_positive(des, "events_per_sec");
  finite_positive(des, "ns_per_event");
  SCALPEL_REQUIRE(des.contains("alloc_hook") &&
                      des.contains("allocs_per_event"),
                  "DES results are missing the allocation figures");
  if (des.at("alloc_hook").as_bool()) {
    const double a = des.at("allocs_per_event").as_number();
    SCALPEL_REQUIRE(std::isfinite(a) && a >= 0.0,
                    "allocs_per_event must be finite and non-negative");
  }
  const Json& solver = results.at("solver");
  finite_positive(solver, "best_seconds");
  finite_positive(solver, "us_per_solve");

  // Sharded-engine section: present iff the workload ran with shards > 0.
  const bool sharded_workload = work.at("shards").as_number() > 0.0;
  SCALPEL_REQUIRE(results.contains("sharded") == sharded_workload,
                  "sharded section must match the workload's shard count");
  if (sharded_workload) {
    const Json& sharded = results.at("sharded");
    finite_positive(sharded, "shards");
    finite_positive(sharded, "events");
    finite_positive(sharded, "best_seconds");
    finite_positive(sharded, "events_per_sec");
    finite_positive(sharded, "ns_per_event");
    SCALPEL_REQUIRE(sharded.contains("bit_identical") &&
                        sharded.at("bit_identical").as_bool(),
                    "a sharded timing is only publishable when the run was "
                    "bit-identical to the single loop");
  }

  // Metro sweep: optional informational scaling data (never gated), but
  // when present every point must carry usable numbers.
  if (results.contains("metro_sweep")) {
    const Json& sweep = results.at("metro_sweep");
    SCALPEL_REQUIRE(sweep.is_array() && sweep.size() > 0,
                    "metro_sweep must be a non-empty array");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const Json& p = sweep.at(i);
      finite_positive(p, "devices");
      finite_positive(p, "events");
      finite_positive(p, "wall_seconds");
      finite_positive(p, "events_per_sec");
    }
  }
}

GateResult check_regression(const Json& baseline, const Json& candidate,
                            double tolerance) {
  SCALPEL_REQUIRE(tolerance > 0.0, "gate tolerance must be positive");
  validate_simcore_report(baseline);
  validate_simcore_report(candidate);

  GateResult r;
  if (candidate.at("build").at("unoptimized").as_bool()) {
    r.passed = true;
    r.skipped = true;
    r.message =
        "SKIPPED: candidate comes from an unoptimized/sanitizer build; "
        "its timings are meaningless for regression gating";
    return r;
  }

  r.baseline_ns_per_event =
      baseline.at("results").at("des").at("ns_per_event").as_number();
  r.candidate_ns_per_event =
      candidate.at("results").at("des").at("ns_per_event").as_number();
  r.ratio = r.candidate_ns_per_event / r.baseline_ns_per_event;
  r.passed = r.ratio <= 1.0 + tolerance;

  // The solver is mandatory in the schema, so it always gates: the joint
  // optimizer is the other latency-critical loop and regressions there are
  // just as real as DES ones.
  const double base_solver =
      baseline.at("results").at("solver").at("us_per_solve").as_number();
  const double cand_solver =
      candidate.at("results").at("solver").at("us_per_solve").as_number();
  r.ratio_solver = cand_solver / base_solver;
  r.passed = r.passed && r.ratio_solver <= 1.0 + tolerance;
  char solver_buf[96];
  std::snprintf(solver_buf, sizeof(solver_buf),
                "; solver us/solve %.0f vs %.0f (%.2fx)", cand_solver,
                base_solver, r.ratio_solver);
  const std::string solver_note = solver_buf;

  // The sharded loop gates with the same tolerance whenever both sides
  // measured it; a report without the section simply isn't compared.
  std::string sharded_note;
  if (baseline.at("results").contains("sharded") &&
      candidate.at("results").contains("sharded")) {
    const double base_ns =
        baseline.at("results").at("sharded").at("ns_per_event").as_number();
    const double cand_ns =
        candidate.at("results").at("sharded").at("ns_per_event").as_number();
    r.ratio_sharded = cand_ns / base_ns;
    r.passed = r.passed && r.ratio_sharded <= 1.0 + tolerance;
    char sbuf[96];
    std::snprintf(sbuf, sizeof(sbuf),
                  "; sharded ns/event %.1f vs %.1f (%.2fx)", cand_ns, base_ns,
                  r.ratio_sharded);
    sharded_note = sbuf;
  }

  std::string warn;
  const std::string& base_cpu =
      baseline.at("build").at("cpu").as_string();
  const std::string& cand_cpu =
      candidate.at("build").at("cpu").as_string();
  if (base_cpu != cand_cpu) {
    warn = " [warning: baseline CPU \"" + base_cpu +
           "\" differs from candidate CPU \"" + cand_cpu +
           "\"; consider re-baselining]";
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s: ns/event %.1f vs baseline %.1f (%.2fx, tolerance %.2fx)",
                r.passed ? "PASS" : "FAIL", r.candidate_ns_per_event,
                r.baseline_ns_per_event, r.ratio, 1.0 + tolerance);
  r.message = std::string(buf) + solver_note + sharded_note + warn;
  return r;
}

}  // namespace scalpel::perf
