#pragma once

#include <cstddef>
#include <functional>

namespace scalpel::perf {

/// Wall-clock measurement of one repeated workload.
struct Timing {
  double best_seconds = 0.0;   // min over reps — the low-noise estimator
  double mean_seconds = 0.0;
  std::size_t reps = 0;
};

/// Runs `fn` `reps` times and reports the minimum (and mean) wall time.
/// Min-of-reps is the standard noise-rejection estimator for pinned
/// deterministic workloads: every source of interference (scheduler,
/// frequency ramps, cache pollution) only ever adds time, so the minimum
/// is the closest observation to the workload's true cost.
///
/// `warmup_reps` untimed executions precede the timed ones (first-touch
/// page faults, branch-predictor and allocator warmup).
Timing time_best_of(std::size_t reps, std::size_t warmup_reps,
                    const std::function<void()>& fn);

}  // namespace scalpel::perf
