#include "perf/harness.hpp"

#include <chrono>
#include <limits>

#include "util/assert.hpp"

namespace scalpel::perf {

Timing time_best_of(std::size_t reps, std::size_t warmup_reps,
                    const std::function<void()>& fn) {
  SCALPEL_REQUIRE(reps > 0, "timing needs at least one rep");
  using Clock = std::chrono::steady_clock;
  for (std::size_t r = 0; r < warmup_reps; ++r) fn();
  Timing t;
  t.reps = reps;
  t.best_seconds = std::numeric_limits<double>::infinity();
  double total = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    fn();
    const std::chrono::duration<double> elapsed = Clock::now() - start;
    const double s = elapsed.count();
    total += s;
    if (s < t.best_seconds) t.best_seconds = s;
  }
  t.mean_seconds = total / static_cast<double>(reps);
  return t;
}

}  // namespace scalpel::perf
