#include "perf/build_info.hpp"

#include <fstream>
#include <sstream>

namespace scalpel::perf {
namespace {

bool detect_sanitizer() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

}  // namespace

BuildInfo build_info() {
  BuildInfo b;
#ifdef NDEBUG
  b.optimized = true;
#else
  b.optimized = false;
#endif
  b.sanitized = detect_sanitizer();
#if defined(__clang__)
  b.compiler = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  b.compiler = std::string("gcc ") + __VERSION__;
#else
  b.compiler = "unknown";
#endif
  return b;
}

std::string cpu_fingerprint() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("model name", 0) == 0) {
      const auto colon = line.find(':');
      if (colon != std::string::npos) {
        std::size_t start = colon + 1;
        while (start < line.size() && line[start] == ' ') ++start;
        return line.substr(start);
      }
    }
  }
  return "unknown";
}

}  // namespace scalpel::perf
