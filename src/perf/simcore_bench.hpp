#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/event_queue.hpp"
#include "util/json.hpp"

namespace scalpel::perf {

/// The pinned BENCH_simcore workload: a campus cluster solved once by the
/// joint optimizer, then simulated repeatedly under the resulting decision.
/// The defaults ARE the tracked baseline workload — changing any of them
/// re-defines the scoreboard and requires re-baselining BENCH_simcore.json
/// (procedure: EXPERIMENTS.md, "P1 simcore perf"). Tests shrink the
/// workload via these knobs; such reports are comparable only to
/// themselves.
struct SimcoreBenchConfig {
  std::size_t devices = 48;
  std::size_t servers = 6;
  double arrival_rate = 4.0;   // per device, tasks/s
  double horizon = 180.0;      // simulated seconds
  double warmup = 10.0;
  std::uint64_t cluster_seed = 7;
  std::uint64_t sim_seed = 12345;
  std::size_t des_reps = 6;    // timed DES reps (min taken)
  std::size_t solver_reps = 3; // timed solver reps (min taken)
  EventQueueImpl event_queue = EventQueueImpl::kCalendar;
  /// Shard count for the sharded-engine section (ShardedSimulator on the
  /// same pinned workload). Part of the tracked baseline: the section is
  /// REQUIREd bit-identical to the single-loop run before its timing is
  /// published, so the scoreboard can never quietly track a divergent
  /// engine. 0 drops the section (and the gate's sharded comparison).
  std::size_t shards = 4;
  /// Largest device count of the metro-scale sweep (0 = no sweep). The
  /// sweep runs the sharded engine once per point at max/100, max/10, max
  /// devices and records wall seconds + events/sec — informational scaling
  /// data, not gated. The baseline is produced with 1'000'000.
  std::size_t sweep_max_devices = 0;
  /// Simulated horizon of each sweep point, seconds.
  double sweep_horizon = 60.0;
  /// Artificial slowdown injected into every timed DES rep, as a fraction
  /// of the rep's own runtime (1.0 = 2x slower). Exists so `ci.sh perf`'s
  /// gate can be demonstrated to fail; never set in real measurements.
  double inject_slowdown = 0.0;
};

/// Current report layout; bump on any key/unit change so the gate can
/// refuse to compare across layouts. v2: workload.shards, results.sharded
/// (gated like results.des) and the optional results.metro_sweep array.
constexpr int kSimcoreSchemaVersion = 2;

/// Runs the microbenchmark and returns the BENCH_simcore report (see
/// EXPERIMENTS.md for the schema). One code path serves the bench binary,
/// the schema golden test, and the CI gate, so they can never drift apart.
Json run_simcore_bench(const SimcoreBenchConfig& config);

}  // namespace scalpel::perf
