#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/event_queue.hpp"
#include "util/json.hpp"

namespace scalpel::perf {

/// The pinned BENCH_simcore workload: a campus cluster solved once by the
/// joint optimizer, then simulated repeatedly under the resulting decision.
/// The defaults ARE the tracked baseline workload — changing any of them
/// re-defines the scoreboard and requires re-baselining BENCH_simcore.json
/// (procedure: EXPERIMENTS.md, "P1 simcore perf"). Tests shrink the
/// workload via these knobs; such reports are comparable only to
/// themselves.
struct SimcoreBenchConfig {
  std::size_t devices = 48;
  std::size_t servers = 6;
  double arrival_rate = 4.0;   // per device, tasks/s
  double horizon = 180.0;      // simulated seconds
  double warmup = 10.0;
  std::uint64_t cluster_seed = 7;
  std::uint64_t sim_seed = 12345;
  std::size_t des_reps = 6;    // timed DES reps (min taken)
  std::size_t solver_reps = 3; // timed solver reps (min taken)
  EventQueueImpl event_queue = EventQueueImpl::kCalendar;
  /// Artificial slowdown injected into every timed DES rep, as a fraction
  /// of the rep's own runtime (1.0 = 2x slower). Exists so `ci.sh perf`'s
  /// gate can be demonstrated to fail; never set in real measurements.
  double inject_slowdown = 0.0;
};

/// Current report layout; bump on any key/unit change so the gate can
/// refuse to compare across layouts.
constexpr int kSimcoreSchemaVersion = 1;

/// Runs the microbenchmark and returns the BENCH_simcore report (see
/// EXPERIMENTS.md for the schema). One code path serves the bench binary,
/// the schema golden test, and the CI gate, so they can never drift apart.
Json run_simcore_bench(const SimcoreBenchConfig& config);

}  // namespace scalpel::perf
