#pragma once

#include <string>

namespace scalpel::perf {

/// Compile-time facts about the running binary that decide whether its
/// timing numbers are meaningful. Perf reports from unoptimized or
/// sanitizer-instrumented builds are marked "unoptimized": true and the
/// regression gate skips them — a Debug build is routinely 10-30x slower
/// and would either mask real regressions or fail the gate spuriously.
struct BuildInfo {
  bool optimized = false;   // NDEBUG was defined (Release/RelWithDebInfo)
  bool sanitized = false;   // ASan/TSan/UBSan instrumentation present
  std::string compiler;     // e.g. "g++ 13.2.0"
};

BuildInfo build_info();

/// True when this build's wall-clock numbers are worth recording.
inline bool timing_trustworthy() {
  const BuildInfo b = build_info();
  return b.optimized && !b.sanitized;
}

/// Best-effort host CPU model string (from /proc/cpuinfo; "unknown"
/// elsewhere). Stored in the report so a baseline produced on different
/// hardware is flagged instead of silently gating against it.
std::string cpu_fingerprint();

}  // namespace scalpel::perf
