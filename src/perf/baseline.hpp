#pragma once

#include <string>

#include "util/json.hpp"

namespace scalpel::perf {

/// Outcome of comparing a candidate BENCH_simcore report to the committed
/// baseline.
struct GateResult {
  bool passed = false;   // candidate within tolerance (or gate skipped)
  bool skipped = false;  // candidate from an unoptimized/sanitized build
  double baseline_ns_per_event = 0.0;
  double candidate_ns_per_event = 0.0;
  double ratio = 0.0;    // candidate / baseline
  /// Sharded-engine comparison (0.0 when either report lacks the section).
  /// When present it gates with the same tolerance as the classic loop.
  double ratio_sharded = 0.0;
  /// Solver comparison on us_per_solve — always present (the report schema
  /// requires the solver section) and gated with the same tolerance, so a
  /// joint-optimizer slowdown trips CI just like a DES one.
  double ratio_solver = 0.0;
  std::string message;   // one-line human verdict (includes warnings)
};

/// Throws ContractViolation unless `report` is a structurally valid
/// BENCH_simcore document: matching schema_version, every required key
/// present, units/values finite and positive where the metric demands it.
/// Shared by the schema golden test and the gate, so the committed baseline
/// can never drift from what the tooling parses.
void validate_simcore_report(const Json& report);

/// The `ci.sh perf` regression gate: fails when the candidate's DES
/// ns/event, sharded ns/event, or solver us/solve exceeds the baseline's
/// by more than `tolerance` (0.15 = +15%). A
/// candidate marked "unoptimized": true is skipped (passed, with a loud
/// message) — Debug/sanitizer numbers must never update or fail the
/// scoreboard. A CPU-fingerprint mismatch is surfaced in the message but
/// does not fail the gate by itself.
GateResult check_regression(const Json& baseline, const Json& candidate,
                            double tolerance);

}  // namespace scalpel::perf
