#include "perf/simcore_bench.hpp"

#include <chrono>

#include "core/joint.hpp"
#include "edge/builders.hpp"
#include "perf/alloc_hook.hpp"
#include "perf/build_info.hpp"
#include "perf/harness.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"

namespace scalpel::perf {
namespace {

/// Busy-waits for `seconds` inside the timed region (gate self-test only).
void spin_for(double seconds) {
  using Clock = std::chrono::steady_clock;
  const auto until =
      Clock::now() + std::chrono::duration<double>(seconds);
  while (Clock::now() < until) {
  }
}

Simulator::Options sim_options(const SimcoreBenchConfig& c) {
  Simulator::Options o;
  o.horizon = c.horizon;
  o.warmup = c.warmup;
  o.seed = c.sim_seed;
  o.event_queue = c.event_queue;
  return o;
}

}  // namespace

Json run_simcore_bench(const SimcoreBenchConfig& config) {
  SCALPEL_REQUIRE(config.des_reps > 0 && config.solver_reps > 0,
                  "bench needs at least one rep per section");

  clusters::CampusOptions campus;
  campus.num_devices = config.devices;
  campus.num_servers = config.servers;
  campus.mean_arrival_rate = config.arrival_rate;
  campus.seed = config.cluster_seed;
  const ProblemInstance instance(clusters::campus(campus));

  // --- Solver section: the joint optimizer at the bench configuration the
  // reproduction benches use (bench_common::joint_opts).
  JointOptions jopts;
  jopts.max_iterations = 4;
  jopts.dp_coverage_bins = 60;
  Decision decision;
  const Timing solver_t =
      time_best_of(config.solver_reps, /*warmup_reps=*/1, [&] {
        decision = JointOptimizer(jopts).optimize(instance);
      });

  // --- DES section: repeated identical runs; a fixed seed makes every rep
  // bit-identical, so min-of-reps measures the same work each time.
  SimMetrics metrics;
  const Timing des_t = time_best_of(config.des_reps, /*warmup_reps=*/1, [&] {
    Simulator sim(instance, decision, sim_options(config));
    metrics = sim.run();
  });
  SCALPEL_REQUIRE(metrics.events_processed > 0,
                  "bench run dispatched zero events");
  double des_best = des_t.best_seconds;
  if (config.inject_slowdown > 0.0) {
    // Honest slowdown: re-time with a busy-wait proportional to the clean
    // best inside every rep, so the reported number is a real measurement
    // of a genuinely slower loop.
    const double clean_best = des_best;
    const Timing slow_t =
        time_best_of(config.des_reps, /*warmup_reps=*/0, [&] {
          Simulator sim(instance, decision, sim_options(config));
          metrics = sim.run();
          spin_for(clean_best * config.inject_slowdown);
        });
    des_best = slow_t.best_seconds;
  }

  // --- Allocation section: one extra (untimed) run bracketed by the hook's
  // counter. Only meaningful when the counting operator new is linked in.
  double allocs_per_event = -1.0;
  if (alloc_hook_linked()) {
    const std::uint64_t before = alloc_count();
    Simulator sim(instance, decision, sim_options(config));
    metrics = sim.run();
    const std::uint64_t after = alloc_count();
    allocs_per_event = static_cast<double>(after - before) /
                       static_cast<double>(metrics.events_processed);
  }

  const double events = static_cast<double>(metrics.events_processed);
  const BuildInfo build = build_info();

  Json report = Json::object();
  report.set("bench", Json::string("simcore"));
  report.set("schema_version",
             Json::number(static_cast<double>(kSimcoreSchemaVersion)));

  Json jbuild = Json::object();
  jbuild.set("optimized", Json::boolean(build.optimized));
  jbuild.set("sanitized", Json::boolean(build.sanitized));
  // The loud flag the gate keys off: numbers from such a build are not
  // comparable to a Release baseline.
  jbuild.set("unoptimized", Json::boolean(!timing_trustworthy()));
  jbuild.set("compiler", Json::string(build.compiler));
  jbuild.set("cpu", Json::string(cpu_fingerprint()));
  report.set("build", std::move(jbuild));

  Json jwork = Json::object();
  jwork.set("devices", Json::number(static_cast<double>(config.devices)));
  jwork.set("servers", Json::number(static_cast<double>(config.servers)));
  jwork.set("arrival_rate", Json::number(config.arrival_rate));
  jwork.set("horizon_seconds", Json::number(config.horizon));
  jwork.set("warmup_seconds", Json::number(config.warmup));
  jwork.set("cluster_seed",
            Json::number(static_cast<double>(config.cluster_seed)));
  jwork.set("sim_seed", Json::number(static_cast<double>(config.sim_seed)));
  jwork.set("event_queue",
            Json::string(config.event_queue == EventQueueImpl::kCalendar
                             ? "calendar"
                             : "binary_heap"));
  jwork.set("injected_slowdown", Json::number(config.inject_slowdown));
  report.set("workload", std::move(jwork));

  Json jdes = Json::object();
  jdes.set("reps", Json::number(static_cast<double>(config.des_reps)));
  jdes.set("events", Json::number(events));
  jdes.set("tasks_arrived",
           Json::number(static_cast<double>(metrics.arrived)));
  jdes.set("tasks_completed",
           Json::number(static_cast<double>(metrics.completed)));
  jdes.set("best_seconds", Json::number(des_best));
  jdes.set("events_per_sec", Json::number(events / des_best));
  jdes.set("ns_per_event", Json::number(des_best * 1e9 / events));
  jdes.set("alloc_hook", Json::boolean(alloc_hook_linked()));
  jdes.set("allocs_per_event", Json::number(allocs_per_event));

  Json jsolver = Json::object();
  jsolver.set("reps", Json::number(static_cast<double>(config.solver_reps)));
  jsolver.set("best_seconds", Json::number(solver_t.best_seconds));
  jsolver.set("us_per_solve", Json::number(solver_t.best_seconds * 1e6));

  Json jresults = Json::object();
  jresults.set("des", std::move(jdes));
  jresults.set("solver", std::move(jsolver));
  report.set("results", std::move(jresults));
  return report;
}

}  // namespace scalpel::perf
