#include "perf/simcore_bench.hpp"

#include <chrono>

#include "core/joint.hpp"
#include "core/objective.hpp"
#include "edge/builders.hpp"
#include "perf/alloc_hook.hpp"
#include "perf/build_info.hpp"
#include "perf/harness.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"

namespace scalpel::perf {
namespace {

/// Busy-waits for `seconds` inside the timed region (gate self-test only).
void spin_for(double seconds) {
  using Clock = std::chrono::steady_clock;
  const auto until =
      Clock::now() + std::chrono::duration<double>(seconds);
  while (Clock::now() < until) {
  }
}

Simulator::Options sim_options(const SimcoreBenchConfig& c) {
  Simulator::Options o;
  o.horizon = c.horizon;
  o.warmup = c.warmup;
  o.seed = c.sim_seed;
  o.event_queue = c.event_queue;
  return o;
}

/// The non-negotiable bar for publishing a sharded timing: the sharded run
/// reproduced the single-loop run exactly, counters and accumulated floats
/// alike. Bitwise comparison on doubles is deliberate.
bool metrics_bit_identical(const SimMetrics& a, const SimMetrics& b) {
  return a.events_processed == b.events_processed && a.arrived == b.arrived &&
         a.completed_all == b.completed_all && a.failed_all == b.failed_all &&
         a.shed_all == b.shed_all && a.in_flight_end == b.in_flight_end &&
         a.retried == b.retried && a.resteered == b.resteered &&
         a.latency.mean() == b.latency.mean() &&
         a.deadline_satisfaction == b.deadline_satisfaction &&
         a.mean_task_energy == b.mean_task_energy;
}

/// One metro-sweep point: a tiled city of 100-device cells under a light
/// device-only load, run once through the sharded engine. Device-only keeps
/// the per-server share REQUIRE trivially satisfiable at any device count;
/// the epoch barriers (lookahead ≈ cell RTT + backhaul) still run at full
/// cadence, so the sweep measures exactly the sharded loop's scaling.
Json metro_point(const SimcoreBenchConfig& config, std::size_t devices) {
  clusters::CampusOptions copts;
  copts.num_devices = devices;
  copts.num_servers = 32;
  copts.devices_per_cell = 100;
  copts.cell_rtt = 10e-3;
  copts.mean_arrival_rate = 0.05;
  copts.deadline = 0.0;  // best effort: pure event-loop throughput
  copts.seed = config.cluster_seed;
  const ProblemInstance instance(clusters::campus(copts));

  Decision d;
  d.scheme = "metro-device-only";
  d.per_device.resize(instance.topology().devices().size());
  for (auto& dd : d.per_device) dd.plan.device_only = true;
  evaluate_decision(instance, d);

  Simulator::Options opts;
  opts.horizon = config.sweep_horizon;
  opts.warmup = 0.0;
  opts.seed = config.sim_seed;
  opts.event_queue = config.event_queue;
  ShardOptions sopts;
  sopts.shards = config.shards;

  SimMetrics m;
  const Timing t = time_best_of(1, /*warmup_reps=*/0, [&] {
    ShardedSimulator sim(instance, d, opts, sopts);
    m = sim.run();
  });
  SCALPEL_REQUIRE(m.events_processed > 0, "metro point dispatched no events");

  Json p = Json::object();
  p.set("devices", Json::number(static_cast<double>(devices)));
  p.set("cells", Json::number(
                     static_cast<double>(instance.topology().cells().size())));
  p.set("shards", Json::number(static_cast<double>(config.shards)));
  p.set("horizon_seconds", Json::number(config.sweep_horizon));
  p.set("tasks_arrived", Json::number(static_cast<double>(m.arrived)));
  p.set("events", Json::number(static_cast<double>(m.events_processed)));
  p.set("wall_seconds", Json::number(t.best_seconds));
  p.set("events_per_sec",
        Json::number(static_cast<double>(m.events_processed) /
                     t.best_seconds));
  return p;
}

}  // namespace

Json run_simcore_bench(const SimcoreBenchConfig& config) {
  SCALPEL_REQUIRE(config.des_reps > 0 && config.solver_reps > 0,
                  "bench needs at least one rep per section");

  clusters::CampusOptions campus;
  campus.num_devices = config.devices;
  campus.num_servers = config.servers;
  campus.mean_arrival_rate = config.arrival_rate;
  campus.seed = config.cluster_seed;
  const ProblemInstance instance(clusters::campus(campus));

  // --- Solver section: the joint optimizer at the bench configuration the
  // reproduction benches use (bench_common::joint_opts).
  JointOptions jopts;
  jopts.max_iterations = 4;
  jopts.dp_coverage_bins = 60;
  Decision decision;
  const Timing solver_t =
      time_best_of(config.solver_reps, /*warmup_reps=*/1, [&] {
        decision = JointOptimizer(jopts).optimize(instance);
      });

  // --- DES section: repeated identical runs; a fixed seed makes every rep
  // bit-identical, so min-of-reps measures the same work each time.
  SimMetrics metrics;
  const Timing des_t = time_best_of(config.des_reps, /*warmup_reps=*/1, [&] {
    Simulator sim(instance, decision, sim_options(config));
    metrics = sim.run();
  });
  SCALPEL_REQUIRE(metrics.events_processed > 0,
                  "bench run dispatched zero events");
  double des_best = des_t.best_seconds;
  if (config.inject_slowdown > 0.0) {
    // Honest slowdown: re-time with a busy-wait proportional to the clean
    // best inside every rep, so the reported number is a real measurement
    // of a genuinely slower loop.
    const double clean_best = des_best;
    const Timing slow_t =
        time_best_of(config.des_reps, /*warmup_reps=*/0, [&] {
          Simulator sim(instance, decision, sim_options(config));
          metrics = sim.run();
          spin_for(clean_best * config.inject_slowdown);
        });
    des_best = slow_t.best_seconds;
  }

  // --- Allocation section: one extra (untimed) run bracketed by the hook's
  // counter. Only meaningful when the counting operator new is linked in.
  double allocs_per_event = -1.0;
  if (alloc_hook_linked()) {
    const std::uint64_t before = alloc_count();
    Simulator sim(instance, decision, sim_options(config));
    metrics = sim.run();
    const std::uint64_t after = alloc_count();
    allocs_per_event = static_cast<double>(after - before) /
                       static_cast<double>(metrics.events_processed);
  }

  // --- Sharded section: the same pinned workload through the cell-sharded
  // engine. Bit-identity with the single-loop run is REQUIREd before the
  // timing is published — a fast-but-wrong shard path must never make the
  // scoreboard.
  SimMetrics sharded_metrics;
  Timing sharded_t{};
  if (config.shards > 0) {
    ShardOptions sopts;
    sopts.shards = config.shards;
    sharded_t = time_best_of(config.des_reps, /*warmup_reps=*/1, [&] {
      ShardedSimulator sim(instance, decision, sim_options(config), sopts);
      sharded_metrics = sim.run();
    });
    SCALPEL_REQUIRE(metrics_bit_identical(metrics, sharded_metrics),
                    "sharded bench run diverged from the single-loop run; "
                    "refusing to publish its timing");
  }

  const double events = static_cast<double>(metrics.events_processed);
  const BuildInfo build = build_info();

  Json report = Json::object();
  report.set("bench", Json::string("simcore"));
  report.set("schema_version",
             Json::number(static_cast<double>(kSimcoreSchemaVersion)));

  Json jbuild = Json::object();
  jbuild.set("optimized", Json::boolean(build.optimized));
  jbuild.set("sanitized", Json::boolean(build.sanitized));
  // The loud flag the gate keys off: numbers from such a build are not
  // comparable to a Release baseline.
  jbuild.set("unoptimized", Json::boolean(!timing_trustworthy()));
  jbuild.set("compiler", Json::string(build.compiler));
  jbuild.set("cpu", Json::string(cpu_fingerprint()));
  report.set("build", std::move(jbuild));

  Json jwork = Json::object();
  jwork.set("devices", Json::number(static_cast<double>(config.devices)));
  jwork.set("servers", Json::number(static_cast<double>(config.servers)));
  jwork.set("arrival_rate", Json::number(config.arrival_rate));
  jwork.set("horizon_seconds", Json::number(config.horizon));
  jwork.set("warmup_seconds", Json::number(config.warmup));
  jwork.set("cluster_seed",
            Json::number(static_cast<double>(config.cluster_seed)));
  jwork.set("sim_seed", Json::number(static_cast<double>(config.sim_seed)));
  jwork.set("event_queue",
            Json::string(config.event_queue == EventQueueImpl::kCalendar
                             ? "calendar"
                             : "binary_heap"));
  jwork.set("shards", Json::number(static_cast<double>(config.shards)));
  jwork.set("injected_slowdown", Json::number(config.inject_slowdown));
  report.set("workload", std::move(jwork));

  Json jdes = Json::object();
  jdes.set("reps", Json::number(static_cast<double>(config.des_reps)));
  jdes.set("events", Json::number(events));
  jdes.set("tasks_arrived",
           Json::number(static_cast<double>(metrics.arrived)));
  jdes.set("tasks_completed",
           Json::number(static_cast<double>(metrics.completed)));
  jdes.set("best_seconds", Json::number(des_best));
  jdes.set("events_per_sec", Json::number(events / des_best));
  jdes.set("ns_per_event", Json::number(des_best * 1e9 / events));
  jdes.set("alloc_hook", Json::boolean(alloc_hook_linked()));
  jdes.set("allocs_per_event", Json::number(allocs_per_event));

  Json jsolver = Json::object();
  jsolver.set("reps", Json::number(static_cast<double>(config.solver_reps)));
  jsolver.set("best_seconds", Json::number(solver_t.best_seconds));
  jsolver.set("us_per_solve", Json::number(solver_t.best_seconds * 1e6));

  Json jresults = Json::object();
  jresults.set("des", std::move(jdes));
  jresults.set("solver", std::move(jsolver));

  if (config.shards > 0) {
    const double sev = static_cast<double>(sharded_metrics.events_processed);
    Json jshard = Json::object();
    jshard.set("shards", Json::number(static_cast<double>(config.shards)));
    jshard.set("reps", Json::number(static_cast<double>(config.des_reps)));
    jshard.set("events", Json::number(sev));
    jshard.set("best_seconds", Json::number(sharded_t.best_seconds));
    jshard.set("events_per_sec",
               Json::number(sev / sharded_t.best_seconds));
    jshard.set("ns_per_event",
               Json::number(sharded_t.best_seconds * 1e9 / sev));
    // Always true when present: the REQUIRE above already enforced it. The
    // key documents the contract in the artifact itself.
    jshard.set("bit_identical", Json::boolean(true));
    jresults.set("sharded", std::move(jshard));
  }

  if (config.sweep_max_devices > 0) {
    SCALPEL_REQUIRE(config.shards > 0,
                    "the metro sweep runs the sharded engine; set shards");
    Json sweep = Json::array();
    for (const std::size_t div : {100u, 10u, 1u}) {
      const std::size_t devices = config.sweep_max_devices / div;
      if (devices == 0) continue;
      sweep.push_back(metro_point(config, devices));
    }
    jresults.set("metro_sweep", std::move(sweep));
  }

  report.set("results", std::move(jresults));
  return report;
}

}  // namespace scalpel::perf
