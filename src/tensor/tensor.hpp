#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace scalpel {
class Rng;

/// Tensor shape: up to 4 dims, interpreted as CHW for activations (the
/// executor runs batch size 1 — latency-sensitive inference is per-frame).
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims);
  explicit Shape(std::vector<std::int64_t> dims);

  std::size_t rank() const { return dims_.size(); }
  std::int64_t dim(std::size_t i) const;
  std::int64_t operator[](std::size_t i) const { return dim(i); }
  std::int64_t numel() const;
  /// Activation payload in bytes (float32).
  std::int64_t bytes() const { return numel() * 4; }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  std::string to_string() const;
  const std::vector<std::int64_t>& dims() const { return dims_; }

 private:
  std::vector<std::int64_t> dims_;
};

/// Dense float32 tensor with value semantics. Deliberately minimal: the NN
/// kernels own all the interesting math; Tensor is storage + shape.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);  // zero-initialized

  static Tensor zeros(Shape shape);
  static Tensor full(Shape shape, float value);
  /// Deterministic He-style initialization (for weights) — N(0, sqrt(2/fanin)).
  static Tensor randn(Shape shape, Rng& rng, float stddev = 1.0f);

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return shape_.numel(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& at(std::int64_t i);
  float at(std::int64_t i) const;

  /// CHW accessors (rank-3 only).
  float& at(std::int64_t c, std::int64_t h, std::int64_t w);
  float at(std::int64_t c, std::int64_t h, std::int64_t w) const;

  /// Reinterpret with the same number of elements.
  Tensor reshaped(Shape shape) const;

  /// Elementwise helpers used by tests.
  double sum() const;
  double abs_max() const;
  bool all_finite() const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

/// Max |a-b| over all elements; shapes must match.
double max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace scalpel
