#include "tensor/tensor.hpp"

#include <cmath>
#include <sstream>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace scalpel {

Shape::Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) {
  for (auto d : dims_) SCALPEL_REQUIRE(d > 0, "shape dims must be positive");
}

Shape::Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
  for (auto d : dims_) SCALPEL_REQUIRE(d > 0, "shape dims must be positive");
}

std::int64_t Shape::dim(std::size_t i) const {
  SCALPEL_REQUIRE(i < dims_.size(), "shape dim index out of range");
  return dims_[i];
}

std::int64_t Shape::numel() const {
  std::int64_t n = 1;
  for (auto d : dims_) n *= d;
  return dims_.empty() ? 0 : n;
}

std::string Shape::to_string() const {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) out << 'x';
    out << dims_[i];
  }
  out << ']';
  return out.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_.numel()), 0.0f) {}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  for (auto& x : t.data_) x = value;
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& x : t.data_) {
    x = static_cast<float>(rng.normal(0.0, stddev));
  }
  return t;
}

float& Tensor::at(std::int64_t i) {
  SCALPEL_REQUIRE(i >= 0 && i < numel(), "tensor index out of range");
  return data_[static_cast<std::size_t>(i)];
}

float Tensor::at(std::int64_t i) const {
  SCALPEL_REQUIRE(i >= 0 && i < numel(), "tensor index out of range");
  return data_[static_cast<std::size_t>(i)];
}

float& Tensor::at(std::int64_t c, std::int64_t h, std::int64_t w) {
  SCALPEL_REQUIRE(shape_.rank() == 3, "CHW accessor on non-rank-3 tensor");
  const auto H = shape_[1];
  const auto W = shape_[2];
  SCALPEL_REQUIRE(c >= 0 && c < shape_[0] && h >= 0 && h < H && w >= 0 && w < W,
                  "CHW index out of range");
  return data_[static_cast<std::size_t>((c * H + h) * W + w)];
}

float Tensor::at(std::int64_t c, std::int64_t h, std::int64_t w) const {
  return const_cast<Tensor*>(this)->at(c, h, w);
}

Tensor Tensor::reshaped(Shape shape) const {
  SCALPEL_REQUIRE(shape.numel() == numel(),
                  "reshape must preserve element count");
  Tensor t = *this;
  t.shape_ = std::move(shape);
  return t;
}

double Tensor::sum() const {
  double s = 0.0;
  for (float x : data_) s += x;
  return s;
}

double Tensor::abs_max() const {
  double m = 0.0;
  for (float x : data_) m = std::max(m, static_cast<double>(std::fabs(x)));
  return m;
}

bool Tensor::all_finite() const {
  for (float x : data_) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

double max_abs_diff(const Tensor& a, const Tensor& b) {
  SCALPEL_REQUIRE(a.shape() == b.shape(), "max_abs_diff shape mismatch");
  double m = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, static_cast<double>(std::fabs(a.at(i) - b.at(i))));
  }
  return m;
}

}  // namespace scalpel
