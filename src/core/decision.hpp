#pragma once

#include <vector>

#include "edge/cluster.hpp"
#include "surgery/plan.hpp"

namespace scalpel {

/// The complete control decision for one device: its model surgery and its
/// resource grant. Produced by the joint optimizer and by every baseline, so
/// all schemes are compared through the same evaluator and simulator.
struct DeviceDecision {
  SurgeryPlan plan;
  /// Target edge server; must be valid unless plan.device_only.
  ServerId server = -1;
  /// Fraction of the target server's capacity granted to this device's
  /// offloaded stream, in (0, 1]. Unused when device_only.
  double compute_share = 0.0;
  /// Uplink bytes/s granted within the device's cell. Unused if device_only.
  double bandwidth = 0.0;
};

/// Predicted per-device metrics attached to a decision by the evaluator.
struct DevicePrediction {
  double expected_latency = 0.0;   // includes M/M/1 queueing at the server
  double expected_accuracy = 0.0;
  double offload_prob = 0.0;
  bool stable = true;              // server queue stable under this decision
  bool meets_accuracy = true;
};

struct Decision {
  std::vector<DeviceDecision> per_device;
  std::vector<DevicePrediction> predicted;
  /// Rate-weighted mean of expected latencies (+inf if any device unstable).
  double mean_latency = 0.0;
  /// Name of the scheme that produced it (for bench tables).
  std::string scheme;
};

}  // namespace scalpel
