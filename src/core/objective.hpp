#pragma once

#include "core/decision.hpp"
#include "core/instance.hpp"

namespace scalpel {

/// The canonical analytical objective shared by the joint optimizer, every
/// baseline, and the test suite. Each device's tasks traverse a three-stage
/// tandem queueing network, every stage approximated as an independent
/// queue on the device's granted capacity slice:
///
///   1. device stage  — M/G/1, service = on-device compute (mixture over
///      exits; moments from PlanModel), arrivals = the device's full rate;
///   2. upload stage  — M/D/1 on the granted bandwidth b (every offloaded
///      task ships the same activation payload), arrivals = rate * P_off,
///      plus the fixed path rtt;
///   3. server stage  — M/G/1 on the granted share x of the server (service
///      moments scale as m1/x, m2/x^2), arrivals = rate * P_off.
///
///   E[L_i] = W_dev + P_off * (W_up + rtt_ij + W_srv)
///
/// Any unstable stage (rho >= 1) marks the decision infeasible (+inf
/// latency) — this is what forces the joint optimizer to surger models
/// deeper (smaller uploads, less server work) under load instead of
/// oversubscribing resources. The DES (src/sim) validates the approximation.
struct EvalOptions {
  /// Disable the queueing term (pure service times) — used by unit tests
  /// validating against PlanModel directly.
  bool queueing = true;
};

DevicePrediction evaluate_device(const ProblemInstance& instance, DeviceId id,
                                 const DeviceDecision& decision,
                                 const EvalOptions& opts = {});

/// The PlanModel the evaluator reasons with for one device decision
/// (full-speed server profile; shares enter via the queueing terms). Shared
/// with the simulator and the admission-control module.
PlanModel build_plan_model(const ProblemInstance& instance, DeviceId id,
                           const DeviceDecision& decision);

/// Fills decision.predicted and decision.mean_latency. Also validates the
/// resource grants: per-cell bandwidth sums and per-server share sums must
/// not exceed capacity (tolerance 1e-6); violations throw.
void evaluate_decision(const ProblemInstance& instance, Decision& decision,
                       const EvalOptions& opts = {});

/// Rate-weighted deadline-satisfaction estimate for a decision, using the
/// exponential-tail approximation on the queueing part and deterministic
/// phases elsewhere. Devices with deadline 0 count as satisfied.
double predicted_deadline_satisfaction(const ProblemInstance& instance,
                                       const Decision& decision);

}  // namespace scalpel
