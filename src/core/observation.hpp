#pragma once

#include <vector>

namespace scalpel {

/// Everything the online controller learns in one observation window,
/// replacing the former observe() overload ladder (bandwidth-only /
/// +liveness / +load) with a single struct that can grow fields without
/// spawning a fourth overload. Empty optional sections keep the old
/// overloads' semantics:
///   - offered_rate/queue_depth empty: no overload signal this window (the
///     degradation ladder and admission gate stay untouched);
///   - bw_fresh/bw_age/alive_fresh empty: perfect telemetry (every reading
///     fresh, age zero) — what a pass-through channel produces.
struct Observation {
  // Non-aggregate on purpose: a braced list of doubles must keep resolving
  // to the vector<double> back-compat shim, never aggregate-init `time`.
  Observation() = default;

  /// Simulation time of the observation; forwarded to the audit clock, so a
  /// caller that fills it need not call audit_log().advance_time() itself.
  double time = 0.0;
  std::vector<double> cell_bandwidth;  // bytes/s, indexed by cell id
  std::vector<bool> server_alive;      // indexed by server id
  /// Per-device offered load (tasks/s since the last window) and
  /// instantaneous queue depth; both empty = liveness-only observation.
  std::vector<double> offered_rate;
  std::vector<double> queue_depth;
  /// Telemetry freshness from the channel model (see TelemetryChannel):
  /// fresh=false marks a dropped report repeating the last delivered value;
  /// age is seconds since the delivered sample was actually taken.
  std::vector<bool> bw_fresh;
  std::vector<double> bw_age;
  std::vector<bool> alive_fresh;
};

}  // namespace scalpel
