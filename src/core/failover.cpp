#include "core/failover.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <limits>

#include "core/objective.hpp"
#include "util/assert.hpp"

namespace scalpel {
namespace failover {

GuardedOutcome guarded_attempt(const ProblemInstance& instance,
                               const std::vector<bool>& alive,
                               const GuardOptions& opts,
                               const std::function<Decision()>& solve) {
  GuardedOutcome out;
  out.ok = true;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    out.decision = solve();
  } catch (const std::exception& e) {
    out.ok = false;
    out.fail_cause = AuditCause::kSolverTimeout;
    out.fail_detail = std::string("solver threw: ") + e.what();
  }
  if (out.ok && std::isfinite(opts.budget_seconds)) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (elapsed > opts.budget_seconds) {
      out.ok = false;
      out.fail_cause = AuditCause::kSolverTimeout;
      char buf[96];
      std::snprintf(buf, sizeof(buf), "solve took %.3fs, budget %.3fs",
                    elapsed, opts.budget_seconds);
      out.fail_detail = buf;
    }
  }
  if (out.ok && opts.validate) {
    const PlanValidation v =
        validate_plan(instance, out.decision, alive, opts.validation);
    if (!v.ok) {
      out.ok = false;
      out.fail_cause = AuditCause::kPlanRejected;
      out.fail_detail = v.reason;
    }
  }
  return out;
}

Decision device_only_fallback(const ProblemInstance& instance) {
  Decision d;
  d.scheme = "device_fallback";
  d.per_device.resize(instance.topology().devices().size());
  for (auto& dd : d.per_device) dd.plan.device_only = true;
  evaluate_decision(instance, d);
  return d;
}

Decision remap_dead_servers(const ProblemInstance& instance,
                            const Decision& base,
                            const std::vector<bool>& alive) {
  const auto& topo = instance.topology();
  Decision d = base;
  d.scheme = "remap_fallback";
  std::vector<ServerId> live;
  for (const auto& s : topo.servers()) {
    if (alive[static_cast<std::size_t>(s.id)]) live.push_back(s.id);
  }
  for (std::size_t i = 0; i < d.per_device.size(); ++i) {
    auto& dd = d.per_device[i];
    if (dd.plan.device_only) continue;
    const bool valid =
        dd.server >= 0 &&
        static_cast<std::size_t>(dd.server) < topo.servers().size() &&
        alive[static_cast<std::size_t>(dd.server)];
    if (valid) continue;
    if (live.empty()) {
      dd.plan.device_only = true;
      dd.server = -1;
      dd.compute_share = 0.0;
      dd.bandwidth = 0.0;
      continue;
    }
    ServerId best = live.front();
    double best_rtt = std::numeric_limits<double>::infinity();
    for (const ServerId s : live) {
      const double rtt = topo.path_rtt(static_cast<DeviceId>(i), s);
      if (rtt < best_rtt) {
        best_rtt = rtt;
        best = s;
      }
    }
    dd.server = best;
  }
  // Refugees may oversubscribe their new server, and the plan's grants were
  // sized for the bandwidth at its solve — renormalize both to current
  // capacity so the repaired plan passes the same validation as a solve.
  std::vector<double> share(topo.servers().size(), 0.0);
  std::vector<double> grant(topo.cells().size(), 0.0);
  for (std::size_t i = 0; i < d.per_device.size(); ++i) {
    const auto& dd = d.per_device[i];
    if (dd.plan.device_only) continue;
    share[static_cast<std::size_t>(dd.server)] += dd.compute_share;
    grant[static_cast<std::size_t>(
        topo.device(static_cast<DeviceId>(i)).cell)] += dd.bandwidth;
  }
  for (std::size_t i = 0; i < d.per_device.size(); ++i) {
    auto& dd = d.per_device[i];
    if (dd.plan.device_only) continue;
    const double s = share[static_cast<std::size_t>(dd.server)];
    if (s > 1.0) dd.compute_share /= s;
    const auto cell = static_cast<std::size_t>(
        topo.device(static_cast<DeviceId>(i)).cell);
    const double cap = topo.cell(static_cast<CellId>(cell)).bandwidth;
    if (grant[cell] > cap) dd.bandwidth *= cap / grant[cell];
  }
  evaluate_decision(instance, d);
  return d;
}

Decision solve_excluding_dead(
    const ProblemInstance& instance, const std::vector<bool>& alive,
    const std::function<Decision(const ProblemInstance&)>& run) {
  const auto& topo = instance.topology();
  ClusterTopology reduced;
  for (const auto& c : topo.cells()) reduced.add_cell(c);
  for (const auto& d : topo.devices()) reduced.add_device(d);
  std::vector<ServerId> live_ids;
  for (const auto& s : topo.servers()) {
    if (!alive[static_cast<std::size_t>(s.id)]) continue;
    live_ids.push_back(s.id);
    reduced.add_server(s);
  }
  const ProblemInstance sub(reduced);
  Decision d = run(sub);
  for (auto& dd : d.per_device) {
    if (dd.plan.device_only) continue;
    SCALPEL_REQUIRE(dd.server >= 0 && static_cast<std::size_t>(dd.server) <
                                          live_ids.size(),
                    "solver returned an out-of-range server");
    dd.server = live_ids[static_cast<std::size_t>(dd.server)];
  }
  // Re-evaluate against the full instance so predictions and the grant
  // validation refer to the real server ids.
  evaluate_decision(instance, d);
  return d;
}

FallbackOutcome fallback_chain(const ProblemInstance& instance,
                               const std::vector<bool>& alive,
                               const Decision* previous,
                               const GuardOptions& opts) {
  FallbackOutcome out;
  if (previous != nullptr &&
      (!opts.validate ||
       validate_plan(instance, *previous, alive, opts.validation).ok)) {
    // Last-good plan is still safe under the believed conditions.
    out.decision = *previous;
    out.detail = "kept last-good plan";
    out.kept_previous = true;
    return out;
  }
  if (previous != nullptr) {
    Decision repaired = remap_dead_servers(instance, *previous, alive);
    if (!opts.validate ||
        validate_plan(instance, repaired, alive, opts.validation).ok) {
      out.decision = std::move(repaired);
      out.detail = "remapped onto live servers";
      return out;
    }
    out.remap_rejected = true;
  }
  out.decision = device_only_fallback(instance);
  out.detail = "degraded to device-only";
  return out;
}

}  // namespace failover
}  // namespace scalpel
