#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

#include "core/observation.hpp"

namespace scalpel {

/// Trust policy for imperfect telemetry. The defaults are deliberately
/// transparent — confirm_windows = 1 believes every liveness flip
/// immediately and outlier_band = flap_threshold = 0 disable the rejection
/// filters — so a controller fed perfect observations behaves bit-identically
/// to one with no sanitizer at all. Hardened deployments (bench_f18) opt in.
///
/// The whole policy is additionally gated on channel metadata: an
/// Observation without freshness/age vectors did not travel a measurement
/// path that can lie (no TelemetryChannel in the loop), so it is ground
/// truth and is believed as-is even under hardened options. Distrust is
/// reserved for readings that were actually measured.
struct SanitizerOptions {
  /// A bandwidth reading older than this (seconds since the sample was
  /// taken; delay and drops both age readings) is distrusted: the last
  /// accepted value is held instead. Only bites when the observation carries
  /// age metadata, i.e. when a telemetry channel is in the loop.
  double max_age = 10.0;
  /// Reject a fresh bandwidth reading deviating from the rolling reference
  /// by more than this relative band (|v - ref| > band * ref). 0 disables.
  double outlier_band = 0.0;
  /// Rolling-median window (samples) for the outlier reference; the
  /// detector stays off until the window is full.
  std::size_t median_window = 5;
  /// EWMA smoothing factor; > 0 switches the outlier reference from the
  /// rolling median to an exponentially weighted moving average.
  double ewma_alpha = 0.0;
  /// After this many *consecutive* outlier rejections the sanitizer
  /// capitulates: the world really changed, accept the reading and restart
  /// the reference window.
  std::size_t distrust_limit = 3;
  /// Consecutive fresh observations of the opposite liveness state required
  /// before a flip is believed. 1 = believe immediately (pre-hardening
  /// behavior); 2+ filters one-tick misreads at the cost of one extra
  /// window of failover latency.
  std::size_t confirm_windows = 1;
  /// A server whose believed state transitions >= flap_threshold times
  /// within the last flap_window observations is "flapping": its believed
  /// state freezes until the raw readings are *self-consistent* for
  /// flap_hold consecutive windows, at which point that stable state is
  /// adopted — whichever it is. (Unfreezing only on agreement with the
  /// frozen belief would strand a server frozen "up" through a real
  /// outage.) 0 disables flap suppression.
  std::size_t flap_threshold = 0;
  std::size_t flap_window = 10;  // observations
  std::size_t flap_hold = 5;     // self-consistent observations to unfreeze
};

/// What one sanitizer pass did to the raw observation, for audit records
/// (cause telemetry_rejected) and tests.
struct SanitizeReport {
  std::size_t stale_held = 0;         // bandwidth readings past max_age
  std::size_t outliers_rejected = 0;  // bandwidth readings outside the band
  std::size_t flips_deferred = 0;     // liveness flips awaiting confirmation
  std::size_t flaps_suppressed = 0;   // readings ignored on a frozen server
  bool any() const {
    return stale_held + outliers_rejected + flips_deferred + flaps_suppressed >
           0;
  }
  /// One-line audit detail, e.g. "stale=1 outlier=2 deferred=0 flap=3".
  std::string summary() const;
};

/// Stateful filter between raw telemetry and the controller's believed
/// cluster state: holds last-good values across stale windows, rejects
/// bandwidth outliers against a rolling median/EWMA (with capitulation after
/// distrust_limit consecutive rejections), debounces liveness flips, and
/// freezes flapping servers so a blinking reading cannot thrash the plan.
/// apply() mutates the observation in place toward the believed state.
class TelemetrySanitizer {
 public:
  TelemetrySanitizer() = default;
  TelemetrySanitizer(SanitizerOptions opts, std::size_t num_cells,
                     std::size_t num_servers);

  /// Sanitizes one observation in place (cells sized num_cells, servers
  /// num_servers). Must be called in observation order — the filter state
  /// (reference windows, confirmation streaks, flap history) advances.
  SanitizeReport apply(Observation& o);

  const SanitizerOptions& options() const { return opts_; }
  /// Believed liveness after the last apply() (debounce + flap filtering).
  const std::vector<bool>& believed_alive() const { return believed_alive_; }

 private:
  struct CellState {
    std::deque<double> window;  // accepted samples, newest last
    double ewma = 0.0;
    bool ewma_ready = false;
    std::size_t distrust = 0;  // consecutive rejections
    double last_good = 0.0;
    bool has_good = false;
  };
  struct ServerState {
    std::size_t flip_streak = 0;  // consecutive contradicting readings
    bool frozen = false;          // flap suppression engaged
    std::size_t stable = 0;   // consecutive identical readings while frozen
    bool last_raw = true;     // the reading that `stable` is counting
    std::deque<std::size_t> transitions;  // observation indices of flips
    std::size_t observations = 0;
  };

  double reference(const CellState& st) const;
  bool detector_ready(const CellState& st) const;

  SanitizerOptions opts_;
  std::vector<CellState> cells_;
  std::vector<ServerState> servers_;
  std::vector<bool> believed_alive_;
};

}  // namespace scalpel
