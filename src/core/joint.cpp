#include "core/joint.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>
#include <unordered_map>

#include "core/objective.hpp"
#include "profile/latency_model.hpp"
#include "sched/queueing.hpp"
#include "sched/shares.hpp"
#include "surgery/partition.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace scalpel {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Subsample clean cuts to keep the per-device surgery search bounded: keep
/// the earliest cut (offload-everything), the minimum-activation cut, and an
/// even spread by depth.
std::vector<Graph::CutPoint> candidate_cuts(const Graph& graph,
                                            std::size_t max_cuts) {
  auto cuts = graph.clean_cuts();
  if (cuts.size() <= max_cuts) return cuts;
  std::vector<bool> keep(cuts.size(), false);
  keep.front() = true;
  std::size_t min_act = 0;
  for (std::size_t i = 1; i < cuts.size(); ++i) {
    if (cuts[i].activation_bytes < cuts[min_act].activation_bytes) min_act = i;
  }
  keep[min_act] = true;
  for (std::size_t k = 0; k < max_cuts; ++k) {
    const std::size_t idx =
        k * (cuts.size() - 1) / (max_cuts - 1);
    keep[idx] = true;
  }
  std::vector<Graph::CutPoint> out;
  for (std::size_t i = 0; i < cuts.size(); ++i) {
    if (keep[i]) out.push_back(cuts[i]);
  }
  return out;
}

/// Per-profile latency cache reused across every cut considered for one
/// device: per-layer backbone latencies plus each exit head's whole-graph
/// latency. range() sums the cached values in the same node order as
/// LatencyModel::range_latency, so cost tables built from the cache are
/// bit-identical to ones built from scratch — only the repeated roofline
/// arithmetic per node (the surgery search's dominant cost) is hoisted.
struct ProfileCosts {
  std::vector<double> layer;  // index = node id
  std::vector<double> head;   // index = exit candidate

  double range(NodeId after, NodeId upto) const {
    double total = 0.0;
    for (NodeId v = after + 1; v <= upto; ++v) {
      total += layer[static_cast<std::size_t>(v)];
    }
    return total;
  }
};

ProfileCosts profile_costs(const Graph& graph,
                           const std::vector<ExitCandidate>& candidates,
                           const ComputeProfile& profile) {
  ProfileCosts c;
  c.layer = LatencyModel::per_layer(graph, profile);
  c.head.reserve(candidates.size());
  for (const auto& cand : candidates) {
    c.head.push_back(LatencyModel::graph_latency(cand.head, profile));
  }
  return c;
}

/// Builds the generalized exit-setting cost table for a given partition cut:
/// segments and heads priced on their side of the cut, upload charged to the
/// segment that crosses it. cut < 0 means device-only. The upload price
/// includes the M/D/1 queueing inflation at the device's *full* arrival rate
/// — a conservative bound (exits only thin the offloaded stream) that steers
/// the DP away from cuts whose uploads cannot be sustained.
ExitCostTable build_cost_table(const Graph& graph,
                               const std::vector<ExitCandidate>& candidates,
                               NodeId cut, std::int64_t cut_bytes,
                               const ProfileCosts& device,
                               const ProfileCosts& server_slice,
                               double bandwidth, double rtt,
                               double arrival_rate) {
  const bool device_only = cut < 0;
  ExitCostTable t;
  t.segment.resize(candidates.size(), 0.0);
  t.head.resize(candidates.size(), 0.0);
  double upload = 0.0;
  if (!device_only) {
    const double s_up = static_cast<double>(cut_bytes) / bandwidth;
    const double inflated = queueing::md1_sojourn(arrival_rate, s_up);
    // Unsustainable uploads get a large finite penalty (an infinite label
    // would poison the DP arithmetic when multiplied by a zero reach).
    upload = (std::isfinite(inflated) ? inflated : 1e9) + rtt;
  }

  bool crossed = false;
  auto stretch_cost = [&](NodeId from, NodeId to) {
    if (device_only || to <= cut) {
      return device.range(from, to);
    }
    // This stretch ends past the cut: charge the upload exactly once, on
    // the first crossing (including a cut at the stretch's start node).
    double cost = 0.0;
    if (from < cut) {
      cost += device.range(from, cut);
    }
    if (!crossed) {
      cost += upload;
      crossed = true;
    }
    cost += server_slice.range(std::max(from, cut), to);
    return cost;
  };

  NodeId prev = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const NodeId attach = candidates[i].attach;
    t.segment[i] = stretch_cost(prev, attach);
    const bool head_on_server = !device_only && attach > cut;
    t.head[i] = head_on_server ? server_slice.head[i] : device.head[i];
    prev = attach;
  }
  t.tail = stretch_cost(prev, graph.output());
  return t;
}

struct SurgeryOutcome {
  SurgeryPlan plan;
  double cost = kInf;
  bool feasible = false;      // a queueing-stable, accuracy-feasible plan
  std::size_t evaluations = 0;
};

/// Per-device surgery search. For every candidate cut (plus device-only) the
/// generalized exit-setting DP proposes the best exit policy for that cut;
/// the proposals are then scored with the *true* objective — the three-stage
/// queueing evaluator at the device's current resource grant — so a cut
/// whose device-side work cannot sustain the arrival rate is rejected even
/// if its raw service latency looks attractive.
SurgeryOutcome best_surgery(const ProblemInstance& instance, DeviceId id,
                            ServerId server, double share, double bandwidth,
                            const std::vector<Graph::CutPoint>& cuts,
                            const ProfileCosts& dev_costs,
                            const JointOptions& opts) {
  const auto& dev = instance.topology().device(id);
  const auto& bundle = instance.bundle_for(id);

  ExitSettingOptions es;
  es.min_accuracy = dev.min_accuracy;
  es.theta_grid = opts.theta_grid;
  es.max_exits = opts.enable_exits ? opts.max_exits : 0;
  es.coverage_bins = opts.dp_coverage_bins;
  es.difficulty = dev.difficulty;

  SurgeryOutcome best;
  SurgeryOutcome best_unstable;  // least-bad fallback if nothing is stable

  auto consider = [&](NodeId cut, std::int64_t cut_bytes,
                      const ProfileCosts& slice_costs, double bw, double rtt,
                      bool quantize) {
    // Quantized uploads ship 1/4 of the activation plus the scale word.
    const std::int64_t wire_bytes =
        quantize && cut >= 0 ? cut_bytes / 4 + 4 : cut_bytes;
    const ExitCostTable table =
        build_cost_table(bundle.graph, bundle.candidates, cut, wire_bytes,
                         dev_costs, slice_costs, bw, rtt, dev.arrival_rate);
    const ExitSettingResult r = dp_exit_setting_costs(
        bundle.graph, bundle.candidates, bundle.accuracy, table, es);
    best.evaluations += r.evaluations;
    if (!r.feasible) return;

    SurgeryPlan plan;
    plan.policy = r.policy;
    plan.device_only = cut < 0;
    plan.partition_after = cut < 0 ? 0 : cut;
    plan.quantize_upload = quantize && cut >= 0;

    DeviceDecision dd;
    dd.plan = plan;
    if (!plan.device_only) {
      dd.server = server;
      dd.compute_share = std::min(1.0, share);
      dd.bandwidth = bw;
    }
    const DevicePrediction pred = evaluate_device(instance, id, dd);
    if (pred.stable && pred.expected_latency < best.cost) {
      best.cost = pred.expected_latency;
      best.feasible = true;
      best.plan = std::move(plan);
    } else if (!pred.stable && r.expected_latency < best_unstable.cost) {
      best_unstable.cost = r.expected_latency;
      best_unstable.plan = std::move(plan);
    }
  };

  // Device-only option (the slice-cost argument is unused for cut < 0).
  consider(-1, 0, dev_costs, 1.0, 0.0, false);

  if (server >= 0 && share > 0.0 && bandwidth > 0.0) {
    const auto slice =
        instance.topology().server(server).compute.scaled(std::min(1.0, share));
    // One latency sweep for the scaled server, shared by every cut below —
    // previously recomputed inside each of the ~2x16 cost tables.
    const ProfileCosts slice_costs =
        profile_costs(bundle.graph, bundle.candidates, slice);
    const double rtt = instance.topology().path_rtt(id, server);
    const double cell_capacity =
        instance.topology().cell(dev.cell).bandwidth;
    for (const auto& cut : cuts) {
      // Bandwidth is negotiable across rounds: evaluate the cut at no less
      // than its upload-stability minimum (25% headroom), capped by the
      // cell. If the plan is adopted, the Kleinrock bandwidth step grants
      // at least that much whenever the cell can sustain it in aggregate.
      const double stability_bw =
          1.25 * dev.arrival_rate * static_cast<double>(cut.activation_bytes);
      const double bw_eval =
          std::min(std::max(bandwidth, stability_bw), cell_capacity);
      consider(cut.after, cut.activation_bytes, slice_costs, bw_eval, rtt,
               false);
      if (opts.enable_quantized_upload) {
        const double q_stability_bw =
            1.25 * dev.arrival_rate *
            static_cast<double>(cut.activation_bytes / 4 + 4);
        const double q_bw =
            std::min(std::max(bandwidth, q_stability_bw), cell_capacity);
        consider(cut.after, cut.activation_bytes, slice_costs, q_bw, rtt,
                 true);
      }
    }
  }
  if (!best.feasible && std::isfinite(best_unstable.cost)) {
    // Under genuine overload return the least-bad plan; the allocation step
    // and load shedding deal with the residual instability.
    best_unstable.evaluations = best.evaluations;
    best_unstable.feasible = true;
    return best_unstable;
  }
  return best;
}

/// Neurosurgeon-style frozen plan for the enable_surgery=false ablation.
SurgeryPlan frozen_partition_plan(const ProblemInstance& instance, DeviceId id,
                                  ServerId server, double share,
                                  double bandwidth) {
  const auto& dev = instance.topology().device(id);
  const auto& bundle = instance.bundle_for(id);
  LinkSpec link;
  link.bandwidth = bandwidth;
  link.rtt = instance.topology().path_rtt(id, server);
  const auto choice = optimal_partition(
      bundle.graph, dev.compute,
      instance.topology().server(server).compute.scaled(std::min(1.0, share)),
      link);
  SurgeryPlan plan;
  plan.device_only = choice.device_only;
  plan.partition_after = choice.device_only ? 0 : choice.cut_after;
  return plan;
}

/// Scalar score the round selection minimizes (lower = better).
double round_score(const ProblemInstance& instance, const Decision& d,
                   JointObjective objective) {
  switch (objective) {
    case JointObjective::kMeanLatency:
      return d.mean_latency;
    case JointObjective::kDeadlineSatisfaction: {
      // Maximize satisfaction; break ties toward lower (finite) latency.
      const double sat = predicted_deadline_satisfaction(instance, d);
      const double latency_tiebreak =
          std::isfinite(d.mean_latency) ? std::min(d.mean_latency, 1e3) : 1e3;
      return -sat + 1e-6 * latency_tiebreak;
    }
  }
  return d.mean_latency;
}

}  // namespace

JointOptimizer::JointOptimizer(JointOptions opts) : opts_(std::move(opts)) {}

Decision JointOptimizer::optimize(const ProblemInstance& instance) const {
  return optimize(instance, nullptr);
}

Decision JointOptimizer::optimize(const ProblemInstance& instance,
                                  JointReport* report) const {
  const auto t0 = std::chrono::steady_clock::now();
  const auto& topo = instance.topology();
  const std::size_t n = topo.devices().size();
  const std::size_t m = topo.servers().size();

  // ---- Initial allocation: equal bandwidth split, rate-aware round robin
  // over servers, equal compute shares.
  std::vector<double> bandwidth(n, 0.0);
  for (const auto& cell : topo.cells()) {
    const auto members = topo.devices_in_cell(cell.id);
    for (DeviceId d : members) {
      bandwidth[static_cast<std::size_t>(d)] =
          cell.bandwidth / static_cast<double>(members.size());
    }
  }
  std::vector<int> server_of(n, 0);
  {
    // Capacity-aware greedy: each device lands on the server with the most
    // spare capacity per committed arrival rate.
    std::vector<double> committed(m, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t best_j = 0;
      double best_score = -kInf;
      for (std::size_t j = 0; j < m; ++j) {
        const double score =
            topo.server(static_cast<ServerId>(j)).compute.peak_flops /
            (committed[j] + topo.device(static_cast<DeviceId>(i)).arrival_rate);
        if (score > best_score) {
          best_score = score;
          best_j = j;
        }
      }
      server_of[i] = static_cast<int>(best_j);
      committed[best_j] += topo.device(static_cast<DeviceId>(i)).arrival_rate;
    }
  }
  auto equal_shares = [&](const std::vector<int>& assign,
                          const std::vector<bool>& offloads) {
    std::vector<std::size_t> count(m, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (offloads[i]) ++count[static_cast<std::size_t>(assign[i])];
    }
    std::vector<double> share(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (offloads[i]) {
        share[i] = 1.0 / static_cast<double>(
                             count[static_cast<std::size_t>(assign[i])]);
      }
    }
    return share;
  };
  std::vector<bool> offloads(n, true);
  std::vector<double> share = equal_shares(server_of, offloads);

  // ---- Frozen surgery for the allocation-only ablation.
  std::vector<SurgeryPlan> plans(n);
  if (!opts_.enable_surgery) {
    for (std::size_t i = 0; i < n; ++i) {
      plans[i] = frozen_partition_plan(instance, static_cast<DeviceId>(i),
                                       server_of[i], share[i], bandwidth[i]);
    }
  }

  // Round-invariant per-device caches for the surgery search: the candidate
  // cut list and the device-profile latency sweep never change across the
  // alternation's rounds.
  std::vector<std::vector<Graph::CutPoint>> device_cuts(n);
  std::vector<ProfileCosts> device_costs(n);
  if (opts_.enable_surgery) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto id = static_cast<DeviceId>(i);
      const auto& bundle = instance.bundle_for(id);
      device_cuts[i] = candidate_cuts(bundle.graph, /*max_cuts=*/16);
      device_costs[i] =
          profile_costs(bundle.graph, bundle.candidates, topo.device(id).compute);
    }
  }

  // The allocation step's per-(device, server) plan statistics depend only
  // on the surgery plan (the fields read are link-independent), so they are
  // memoized on the plan and reused when the alternation revisits it.
  struct AllocStats {
    double p_off = 0.0;
    std::int64_t up_bytes = 0;
    std::vector<double> s_cond;  // per server
  };
  auto plan_signature = [](const SurgeryPlan& p) {
    std::string s = p.device_only ? "L" : "O";
    s += std::to_string(p.partition_after);
    s += p.quantize_upload ? "q" : "f";
    for (const auto& e : p.policy.exits) {
      s += ':';
      s += std::to_string(e.candidate);
      s += '@';
      s += std::to_string(e.theta);
    }
    return s;
  };
  std::vector<std::unordered_map<std::string, AllocStats>> alloc_cache(n);

  Decision best;
  best.scheme = "joint";
  double best_obj = kInf;
  std::size_t surgery_evals = 0;
  std::vector<double> history;

  auto snapshot = [&]() {
    Decision d;
    d.scheme = "joint";
    d.per_device.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto& dd = d.per_device[i];
      dd.plan = plans[i];
      if (!dd.plan.device_only) {
        dd.server = server_of[i];
        dd.compute_share = std::min(1.0, share[i]);
        dd.bandwidth = bandwidth[i];
      }
    }
    evaluate_decision(instance, d);
    return d;
  };

  for (std::size_t iter = 0; iter < opts_.max_iterations; ++iter) {
    // ---- Surgery step. Damped: a device adopts the new plan only if it
    // beats its current plan under the current grants — prevents the
    // surgery/allocation alternation from flip-flopping.
    if (opts_.enable_surgery) {
      for (std::size_t i = 0; i < n; ++i) {
        const auto id = static_cast<DeviceId>(i);
        const auto outcome =
            best_surgery(instance, id, server_of[i], share[i], bandwidth[i],
                         device_cuts[i], device_costs[i], opts_);
        surgery_evals += outcome.evaluations;
        if (!outcome.feasible) continue;
        if (iter == 0) {
          plans[i] = outcome.plan;
          continue;
        }
        DeviceDecision current;
        current.plan = plans[i];
        if (!current.plan.device_only) {
          current.server = server_of[i];
          current.compute_share = std::clamp(share[i], 1e-9, 1.0);
          // Same negotiable-bandwidth rule the proposals were scored under,
          // so incumbent and challenger are compared on equal terms.
          const auto& dev = topo.device(id);
          double cut_bytes = static_cast<double>(
              instance.bundle_for(id)
                  .graph.node(current.plan.partition_after)
                  .out_shape.bytes());
          if (current.plan.quantize_upload) cut_bytes = cut_bytes / 4 + 4;
          const double stability_bw = 1.25 * dev.arrival_rate * cut_bytes;
          current.bandwidth = std::min(
              std::max(std::max(bandwidth[i], 1.0), stability_bw),
              topo.cell(dev.cell).bandwidth);
        }
        const auto current_pred = evaluate_device(instance, id, current);
        if (!current_pred.stable ||
            outcome.cost < current_pred.expected_latency) {
          plans[i] = outcome.plan;
        }
      }
    }
    for (std::size_t i = 0; i < n; ++i) offloads[i] = !plans[i].device_only;

    // ---- Allocation step.
    if (opts_.enable_allocation) {
      // Per-device offload statistics under full-speed servers.
      std::vector<double> p_off(n, 0.0);
      std::vector<std::int64_t> up_bytes(n, 0);
      std::vector<std::vector<double>> s_cond(n);  // per server
      for (std::size_t i = 0; i < n; ++i) {
        if (!offloads[i]) continue;
        const auto id = static_cast<DeviceId>(i);
        const auto& dev = topo.device(id);
        const auto& bundle = instance.bundle_for(id);
        auto& cache = alloc_cache[i];
        auto it = cache.find(plan_signature(plans[i]));
        if (it == cache.end()) {
          AllocStats st;
          st.s_cond.resize(m, 0.0);
          for (std::size_t j = 0; j < m; ++j) {
            LinkSpec link;
            // offload_prob / upload_bytes / expected_server_time do not
            // depend on the link, so a placeholder bandwidth keeps the
            // cache valid across the per-round bandwidth renegotiation.
            link.bandwidth = 1.0;
            link.rtt = topo.path_rtt(id, static_cast<ServerId>(j));
            const PlanModel pm(bundle.graph, bundle.candidates, plans[i],
                               bundle.accuracy, dev.compute,
                               topo.server(static_cast<ServerId>(j)).compute,
                               link);
            if (j == 0) {
              st.p_off = pm.breakdown().offload_prob;
              st.up_bytes = pm.breakdown().upload_bytes;
            }
            st.s_cond[j] = pm.breakdown().offload_prob > 0.0
                               ? pm.breakdown().expected_server_time /
                                     pm.breakdown().offload_prob
                               : 0.0;
          }
          it = cache.emplace(plan_signature(plans[i]), std::move(st)).first;
        }
        p_off[i] = it->second.p_off;
        up_bytes[i] = it->second.up_bytes;
        s_cond[i] = it->second.s_cond;
        if (p_off[i] <= 0.0) {
          // The plan never uploads despite a partition; treat as local.
          plans[i].device_only = true;
          offloads[i] = false;
        }
      }

      // Bandwidth per cell: Kleinrock split over the offloaders' upload
      // streams (stability-aware); if the cell is overloaded even at full
      // capacity, fall back to the square-root rule and let the objective's
      // instability penalty push the next surgery round to cut deeper.
      for (const auto& cell : topo.cells()) {
        std::vector<DeviceId> members;
        std::vector<double> lambda_up;
        std::vector<double> bytes_up;
        std::vector<double> demand;
        for (DeviceId d : topo.devices_in_cell(cell.id)) {
          const auto i = static_cast<std::size_t>(d);
          if (!offloads[i]) continue;
          members.push_back(d);
          lambda_up.push_back(topo.device(d).arrival_rate * p_off[i]);
          bytes_up.push_back(static_cast<double>(up_bytes[i]));
          demand.push_back(topo.device(d).arrival_rate * p_off[i] *
                           static_cast<double>(up_bytes[i]));
        }
        if (members.empty()) continue;
        auto split = queueing::kleinrock(lambda_up, bytes_up, cell.bandwidth);
        if (split.empty()) {
          const bool any_positive =
              std::any_of(demand.begin(), demand.end(),
                          [](double w) { return w > 0.0; });
          split = any_positive
                      ? shares::sqrt_rule(demand, cell.bandwidth)
                      : shares::equal_split(
                            std::vector<double>(demand.size(), 1.0),
                            cell.bandwidth);
        }
        std::vector<double> granted(split.size());
        double total = 0.0;
        for (std::size_t k = 0; k < split.size(); ++k) {
          granted[k] = std::max(split[k], cell.bandwidth * 1e-6);
          total += granted[k];
        }
        // Clamping zero-demand members up may oversubscribe; renormalize.
        const double scale = total > cell.bandwidth ? cell.bandwidth / total
                                                    : 1.0;
        for (std::size_t k = 0; k < members.size(); ++k) {
          bandwidth[static_cast<std::size_t>(members[k])] = granted[k] * scale;
        }
      }

      // Server assignment: best-response over the offloaders.
      std::vector<std::size_t> off_idx;
      for (std::size_t i = 0; i < n; ++i) {
        if (offloads[i]) off_idx.push_back(i);
      }
      if (!off_idx.empty()) {
        OffloadingProblem prob;
        prob.capacity.assign(m, 1.0);
        for (std::size_t k = 0; k < off_idx.size(); ++k) {
          const std::size_t i = off_idx[k];
          const auto id = static_cast<DeviceId>(i);
          prob.rate.push_back(topo.device(id).arrival_rate * p_off[i]);
          std::vector<double> base(m, 0.0);
          std::vector<double> work(m, 0.0);
          for (std::size_t j = 0; j < m; ++j) {
            base[j] = transfer_latency(up_bytes[i], bandwidth[i],
                                       topo.path_rtt(id,
                                                     static_cast<ServerId>(j)));
            work[j] = std::max(s_cond[i][j], 1e-9);
          }
          prob.base_latency.push_back(std::move(base));
          prob.work.push_back(std::move(work));
        }
        auto solution = best_response_offloading(prob, opts_.best_response);
        if (!solution.feasible) {
          // Shed load: convert the heaviest offloaders to device-only until
          // the assignment stabilizes.
          while (!solution.feasible && off_idx.size() > 0) {
            std::size_t worst = 0;
            double worst_demand = -kInf;
            for (std::size_t k = 0; k < off_idx.size(); ++k) {
              const double d = prob.rate[k] * prob.work[k][0];
              if (d > worst_demand) {
                worst_demand = d;
                worst = k;
              }
            }
            const std::size_t dev_i = off_idx[worst];
            plans[dev_i].device_only = true;
            offloads[dev_i] = false;
            off_idx.erase(off_idx.begin() + static_cast<std::ptrdiff_t>(worst));
            prob.rate.erase(prob.rate.begin() +
                            static_cast<std::ptrdiff_t>(worst));
            prob.base_latency.erase(prob.base_latency.begin() +
                                    static_cast<std::ptrdiff_t>(worst));
            prob.work.erase(prob.work.begin() +
                            static_cast<std::ptrdiff_t>(worst));
            if (off_idx.empty()) break;
            solution = best_response_offloading(prob, opts_.best_response);
          }
        }
        if (!off_idx.empty() && solution.feasible) {
          const auto shares_out = kleinrock_shares(prob, solution.server_of);
          for (std::size_t k = 0; k < off_idx.size(); ++k) {
            server_of[off_idx[k]] = solution.server_of[k];
            share[off_idx[k]] = std::clamp(shares_out[k], 1e-9, 1.0);
          }
        }
      }
    } else {
      share = equal_shares(server_of, offloads);
    }

    // ---- Evaluate the round.
    Decision d = snapshot();
    history.push_back(d.mean_latency);
    const double d_score = round_score(instance, d, opts_.objective);
    const bool first = best.per_device.empty();
    if (first || d_score < best_obj) {
      const double improvement =
          std::isfinite(best_obj) && std::abs(best_obj) > 0.0
              ? (best_obj - d_score) / std::abs(best_obj)
              : 1.0;
      best_obj = d_score;
      best = std::move(d);
      if (!first && improvement < opts_.convergence_tol) break;
    } else if (std::isfinite(best_obj)) {
      break;  // no improvement on a finite objective: converged
    }
    // While the objective is still infinite, keep iterating — the damped
    // surgery/allocation rounds need a few passes to untangle overload.
  }

  // Portfolio guard: also solve the conservative variant (frozen
  // Neurosurgeon partitions, allocation optimized — cheap, no surgery DP)
  // and keep whichever decision is better. Under congestion the
  // alternation's negotiable-bandwidth scoring can settle in a worse
  // equilibrium than the frozen configuration; this guarantees the full
  // optimizer dominates its allocation-only ablation.
  if (opts_.enable_surgery) {
    JointOptions fallback = opts_;
    fallback.enable_surgery = false;
    Decision alt = JointOptimizer(fallback).optimize(instance);
    if (round_score(instance, alt, opts_.objective) < best_obj) {
      alt.scheme = "joint";
      best = std::move(alt);
    }
  }

  if (report) {
    report->iterations = history.size();
    report->objective_history = history;
    report->surgery_evaluations = surgery_evals;
    report->solve_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  SCALPEL_REQUIRE(!best.per_device.empty(),
                  "joint optimizer produced no decision");
  return best;
}

}  // namespace scalpel
