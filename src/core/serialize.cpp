#include "core/serialize.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace scalpel::serialize {
namespace {

Json profile_to_json(const ComputeProfile& p) {
  Json j = Json::object();
  j.set("name", Json::string(p.name));
  j.set("peak_flops", Json::number(p.peak_flops));
  j.set("mem_bw", Json::number(p.mem_bw));
  j.set("layer_overhead", Json::number(p.layer_overhead));
  Json eff = Json::object();
  for (const auto& [kind, value] : p.efficiency) {
    eff.set(layer_kind_name(kind), Json::number(value));
  }
  j.set("efficiency", std::move(eff));
  return j;
}

LayerKind kind_from_name(const std::string& name) {
  for (int k = 0; k <= static_cast<int>(LayerKind::kSoftmax); ++k) {
    const auto kind = static_cast<LayerKind>(k);
    if (name == layer_kind_name(kind)) return kind;
  }
  SCALPEL_REQUIRE(false, "unknown layer kind name: " + name);
}

ComputeProfile profile_from_json(const Json& j) {
  ComputeProfile p;
  p.name = j.at("name").as_string();
  p.peak_flops = j.at("peak_flops").as_number();
  p.mem_bw = j.at("mem_bw").as_number();
  p.layer_overhead = j.at("layer_overhead").as_number();
  const Json& eff = j.at("efficiency");
  for (const auto& key : eff.keys()) {
    p.efficiency[kind_from_name(key)] = eff.at(key).as_number();
  }
  return p;
}

Json energy_to_json(const EnergyProfile& e) {
  Json j = Json::object();
  j.set("name", Json::string(e.name));
  j.set("p_active", Json::number(e.p_active));
  j.set("p_tx", Json::number(e.p_tx));
  j.set("p_idle", Json::number(e.p_idle));
  return j;
}

EnergyProfile energy_from_json(const Json& j) {
  EnergyProfile e;
  e.name = j.at("name").as_string();
  e.p_active = j.at("p_active").as_number();
  e.p_tx = j.at("p_tx").as_number();
  e.p_idle = j.at("p_idle").as_number();
  return e;
}

}  // namespace

Json to_json(const SurgeryPlan& plan) {
  Json j = Json::object();
  j.set("device_only", Json::boolean(plan.device_only));
  j.set("partition_after", Json::number(plan.partition_after));
  j.set("quantize_upload", Json::boolean(plan.quantize_upload));
  Json exits = Json::array();
  for (const auto& e : plan.policy.exits) {
    Json ej = Json::object();
    ej.set("candidate", Json::number(static_cast<double>(e.candidate)));
    ej.set("theta", Json::number(e.theta));
    exits.push_back(std::move(ej));
  }
  j.set("exits", std::move(exits));
  return j;
}

SurgeryPlan plan_from_json(const Json& j) {
  SurgeryPlan plan;
  plan.device_only = j.at("device_only").as_bool();
  plan.partition_after = static_cast<NodeId>(j.at("partition_after").as_int());
  if (j.contains("quantize_upload")) {
    plan.quantize_upload = j.at("quantize_upload").as_bool();
  }
  const Json& exits = j.at("exits");
  for (std::size_t i = 0; i < exits.size(); ++i) {
    ExitChoice e;
    e.candidate = static_cast<std::size_t>(exits.at(i).at("candidate").as_int());
    e.theta = exits.at(i).at("theta").as_number();
    plan.policy.exits.push_back(e);
  }
  return plan;
}

Json to_json(const DeviceDecision& d) {
  Json j = Json::object();
  j.set("plan", to_json(d.plan));
  j.set("server", Json::number(d.server));
  j.set("compute_share", Json::number(d.compute_share));
  j.set("bandwidth", Json::number(d.bandwidth));
  return j;
}

DeviceDecision device_decision_from_json(const Json& j) {
  DeviceDecision d;
  d.plan = plan_from_json(j.at("plan"));
  d.server = static_cast<ServerId>(j.at("server").as_int());
  d.compute_share = j.at("compute_share").as_number();
  d.bandwidth = j.at("bandwidth").as_number();
  return d;
}

Json to_json(const Decision& d) {
  Json j = Json::object();
  j.set("scheme", Json::string(d.scheme));
  Json devices = Json::array();
  for (const auto& dd : d.per_device) devices.push_back(to_json(dd));
  j.set("per_device", std::move(devices));
  Json preds = Json::array();
  for (const auto& p : d.predicted) {
    Json pj = Json::object();
    pj.set("expected_latency",
           Json::number(std::isfinite(p.expected_latency)
                            ? p.expected_latency
                            : -1.0));
    pj.set("expected_accuracy", Json::number(p.expected_accuracy));
    pj.set("offload_prob", Json::number(p.offload_prob));
    pj.set("stable", Json::boolean(p.stable));
    preds.push_back(std::move(pj));
  }
  j.set("predicted", std::move(preds));
  return j;
}

Decision decision_from_json(const Json& j) {
  Decision d;
  d.scheme = j.at("scheme").as_string();
  const Json& devices = j.at("per_device");
  for (std::size_t i = 0; i < devices.size(); ++i) {
    d.per_device.push_back(device_decision_from_json(devices.at(i)));
  }
  // Predictions are re-derivable; evaluate_decision repopulates them.
  return d;
}

Json to_json(const ClusterTopology& topo) {
  Json j = Json::object();
  Json cells = Json::array();
  for (const auto& c : topo.cells()) {
    Json cj = Json::object();
    cj.set("name", Json::string(c.name));
    cj.set("bandwidth", Json::number(c.bandwidth));
    cj.set("rtt", Json::number(c.rtt));
    cells.push_back(std::move(cj));
  }
  j.set("cells", std::move(cells));

  Json devices = Json::array();
  for (const auto& d : topo.devices()) {
    Json dj = Json::object();
    dj.set("name", Json::string(d.name));
    dj.set("compute", profile_to_json(d.compute));
    dj.set("energy", energy_to_json(d.energy));
    dj.set("cell", Json::number(d.cell));
    dj.set("model", Json::string(d.model));
    dj.set("arrival_rate", Json::number(d.arrival_rate));
    dj.set("deadline", Json::number(d.deadline));
    dj.set("min_accuracy", Json::number(d.min_accuracy));
    dj.set("difficulty_a", Json::number(d.difficulty.a()));
    dj.set("difficulty_b", Json::number(d.difficulty.b()));
    devices.push_back(std::move(dj));
  }
  j.set("devices", std::move(devices));

  Json servers = Json::array();
  for (const auto& s : topo.servers()) {
    Json sj = Json::object();
    sj.set("name", Json::string(s.name));
    sj.set("compute", profile_to_json(s.compute));
    sj.set("backhaul_rtt", Json::number(s.backhaul_rtt));
    servers.push_back(std::move(sj));
  }
  j.set("servers", std::move(servers));
  return j;
}

ClusterTopology topology_from_json(const Json& j) {
  ClusterTopology topo;
  const Json& cells = j.at("cells");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    Cell c;
    c.name = cells.at(i).at("name").as_string();
    c.bandwidth = cells.at(i).at("bandwidth").as_number();
    c.rtt = cells.at(i).at("rtt").as_number();
    topo.add_cell(std::move(c));
  }
  const Json& devices = j.at("devices");
  for (std::size_t i = 0; i < devices.size(); ++i) {
    const Json& dj = devices.at(i);
    Device d;
    d.name = dj.at("name").as_string();
    d.compute = profile_from_json(dj.at("compute"));
    d.energy = energy_from_json(dj.at("energy"));
    d.cell = static_cast<CellId>(dj.at("cell").as_int());
    d.model = dj.at("model").as_string();
    d.arrival_rate = dj.at("arrival_rate").as_number();
    d.deadline = dj.at("deadline").as_number();
    d.min_accuracy = dj.at("min_accuracy").as_number();
    if (dj.contains("difficulty_a")) {
      d.difficulty = DifficultyModel(dj.at("difficulty_a").as_number(),
                                     dj.at("difficulty_b").as_number());
    }
    topo.add_device(std::move(d));
  }
  const Json& servers = j.at("servers");
  for (std::size_t i = 0; i < servers.size(); ++i) {
    const Json& sj = servers.at(i);
    EdgeServer s;
    s.name = sj.at("name").as_string();
    s.compute = profile_from_json(sj.at("compute"));
    s.backhaul_rtt = sj.at("backhaul_rtt").as_number();
    topo.add_server(std::move(s));
  }
  topo.validate();
  return topo;
}

}  // namespace scalpel::serialize
