#pragma once

#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "core/decision.hpp"
#include "core/instance.hpp"
#include "core/validate.hpp"
#include "obs/audit.hpp"

namespace scalpel {
namespace failover {

/// The watchdog/fallback machinery PR 8 built into OnlineController, hoisted
/// into free functions so every control loop — the centralized controller
/// and each distributed CellController — guards its solves the same way.
/// None of these touch controller state; callers keep their own counters,
/// audit records, and backoff windows.

/// Watchdog knobs for one guarded solve attempt.
struct GuardOptions {
  /// Wall-clock budget (post-hoc: an overrun solve is discarded). inf = off.
  double budget_seconds = std::numeric_limits<double>::infinity();
  /// Run validate_plan() on the output before accepting it.
  bool validate = true;
  PlanValidationOptions validation;
};

/// Outcome of one guarded solve attempt. When !ok, `decision` is untouched
/// garbage — callers must not adopt it — and fail_cause/fail_detail carry
/// the audit attribution (solver_timeout or plan_rejected).
struct GuardedOutcome {
  bool ok = false;
  Decision decision;
  AuditCause fail_cause = AuditCause::kSolverTimeout;
  std::string fail_detail;
};

/// Runs `solve` under the watchdog: try/catch, wall-clock budget, and
/// validate_plan against `alive` (empty = all up). Never throws.
GuardedOutcome guarded_attempt(const ProblemInstance& instance,
                               const std::vector<bool>& alive,
                               const GuardOptions& opts,
                               const std::function<Decision()>& solve);

/// Everything-local survival plan: every device runs device-only. Always
/// routable, never oversubscribes anything.
Decision device_only_fallback(const ProblemInstance& instance);

/// Cheap plan repair: devices pointing at dead/invalid servers move to the
/// live server with the smallest path RTT (device-only when none is left),
/// then per-server shares and per-cell grants are renormalized to fit
/// current capacity so the repaired plan passes the same validation as a
/// fresh solve.
Decision remap_dead_servers(const ProblemInstance& instance,
                            const Decision& base,
                            const std::vector<bool>& alive);

/// Rebuilds the topology with only the live servers (ids compacted to
/// 0..k-1), solves via `run` on the reduced instance, then maps the chosen
/// server ids back and re-evaluates against the full instance. `run` is the
/// caller's solver entry point (real optimizer or test seam).
Decision solve_excluding_dead(
    const ProblemInstance& instance, const std::vector<bool>& alive,
    const std::function<Decision(const ProblemInstance&)>& run);

/// Result of walking the last-good -> remap -> device-only fallback chain.
struct FallbackOutcome {
  Decision decision;
  std::string detail;        // audit text, e.g. "kept last-good plan"
  bool kept_previous = false;  // last-good survived validation unchanged
  bool remap_rejected = false;  // the remap candidate failed validation too
};

/// Walks the fallback chain after a failed solve: keep `previous` if it
/// still validates under the believed conditions, else remap it onto live
/// servers, else degrade to device-only. `previous` may be nullptr (no
/// last-good plan yet) — the chain then jumps straight to device-only.
/// The returned decision always validates (device-only cannot fail).
FallbackOutcome fallback_chain(const ProblemInstance& instance,
                               const std::vector<bool>& alive,
                               const Decision* previous,
                               const GuardOptions& opts);

}  // namespace failover
}  // namespace scalpel
