#pragma once

#include "core/decision.hpp"
#include "core/instance.hpp"
#include "sched/offloading.hpp"
#include "surgery/exit_setting.hpp"

namespace scalpel {

/// What the optimizer's round selection minimizes.
enum class JointObjective {
  /// Rate-weighted expected latency (the default; the paper's headline).
  kMeanLatency,
  /// Predicted deadline-satisfaction ratio (maximized) with mean latency as
  /// the tie-breaker — for SLO-driven deployments. The per-device surgery
  /// step still proposes by expected latency (a monotone proxy below the
  /// deadline); the objective decides which alternation round is kept.
  kDeadlineSatisfaction,
};

/// Options for the joint optimizer. The two enable_* switches implement the
/// ablations reported in the evaluation (surgery-only / allocation-only).
struct JointOptions {
  JointObjective objective = JointObjective::kMeanLatency;
  /// Alternating (surgery <-> allocation) rounds.
  std::size_t max_iterations = 6;
  /// Stop when the objective improves by less than this fraction.
  double convergence_tol = 0.01;

  /// Ablation: optimize model surgery (partition + exits). When false the
  /// plan is frozen to the Neurosurgeon partition computed under the initial
  /// equal allocation, with no exits.
  bool enable_surgery = true;
  /// Within surgery, allow early exits (false = partition-only surgery).
  bool enable_exits = true;
  /// Extension: allow INT8-quantized uploads as a surgery dimension (1/4 of
  /// the activation bytes for a small accuracy penalty). Off by default to
  /// stay faithful to the base reproduction; bench_f13 studies it.
  bool enable_quantized_upload = false;
  /// Ablation: optimize resource allocation. When false the initial
  /// equal-split bandwidth / round-robin servers / equal shares stay fixed.
  bool enable_allocation = true;

  /// Exit-threshold grid and exit count bound used by the surgery DP.
  std::vector<double> theta_grid = {0.0, 0.15, 0.30, 0.45, 0.60, 0.75};
  std::size_t max_exits = 3;
  std::size_t dp_coverage_bins = 60;

  BestResponseOptions best_response;
};

/// Diagnostics from a solve (drives the scalability/convergence benches).
struct JointReport {
  std::size_t iterations = 0;
  std::vector<double> objective_history;  // mean latency after each round
  double solve_seconds = 0.0;
  std::size_t surgery_evaluations = 0;    // DP/exhaustive configs examined
};

/// The paper's contribution: jointly choose, for every device, its model
/// surgery (early-exit setting + partition point) and its resource
/// allocation (edge server, compute share, uplink bandwidth), minimizing the
/// rate-weighted expected latency subject to per-device accuracy floors.
///
/// Structure: alternating optimization. The surgery step solves, per device,
/// a generalized exit-setting DP over every clean cut, pricing backbone
/// segments on the side of the cut they execute and charging the upload to
/// tasks crossing it. The allocation step re-splits cell bandwidth by the
/// square-root rule, re-assigns servers by best-response dynamics over a
/// Kleinrock-shared queueing model, and re-derives compute shares. Rounds
/// repeat until the objective stalls.
class JointOptimizer {
 public:
  explicit JointOptimizer(JointOptions opts = {});

  Decision optimize(const ProblemInstance& instance) const;
  Decision optimize(const ProblemInstance& instance, JointReport* report) const;

  const JointOptions& options() const { return opts_; }

 private:
  JointOptions opts_;
};

}  // namespace scalpel
