#pragma once

#include <vector>

#include "core/joint.hpp"

namespace scalpel {

/// Online re-optimization under bandwidth dynamics: monitors the observed
/// per-cell bandwidth and re-runs the joint optimizer when conditions drift
/// beyond a hysteresis band (re-optimizing on every fluctuation would thrash
/// plans that real deployments cache on devices).
class OnlineController {
 public:
  struct Options {
    /// Re-optimize when any cell's bandwidth deviates from the value used at
    /// the last solve by more than this relative factor.
    double hysteresis = 0.25;
    JointOptions joint;
  };

  explicit OnlineController(const ClusterTopology& topology);
  OnlineController(const ClusterTopology& topology, Options opts);

  /// Current decision (solves on first access if needed).
  const Decision& decision();

  /// Feed an observation of per-cell bandwidths (bytes/s, indexed by cell
  /// id). Returns true if a re-optimization was triggered.
  bool observe(const std::vector<double>& cell_bandwidth);

  std::size_t reoptimizations() const { return reoptimizations_; }
  const ProblemInstance& instance() const { return instance_; }

 private:
  void solve();

  Options opts_;
  ProblemInstance instance_;
  std::vector<double> solved_bandwidth_;  // per cell at last solve
  Decision decision_;
  bool solved_ = false;
  std::size_t reoptimizations_ = 0;
};

}  // namespace scalpel
