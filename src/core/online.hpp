#pragma once

#include <vector>

#include "core/joint.hpp"

namespace scalpel {

/// Online re-optimization under bandwidth dynamics and hard failures:
/// monitors the observed per-cell bandwidth and per-server liveness,
/// re-running the joint optimizer when conditions drift beyond a hysteresis
/// band (re-optimizing on every fluctuation would thrash plans that real
/// deployments cache on devices) or when any server's liveness flips (a
/// crash is a hard signal — no hysteresis). Dead servers are excluded from
/// the solve; with no server reachable the controller degrades to a
/// device-only deployment rather than failing.
class OnlineController {
 public:
  struct Options {
    /// Re-optimize when any cell's bandwidth deviates from the value used at
    /// the last solve by more than this relative factor.
    double hysteresis = 0.25;
    JointOptions joint;
  };

  explicit OnlineController(const ClusterTopology& topology);
  OnlineController(const ClusterTopology& topology, Options opts);

  /// Current decision (solves on first access if needed).
  const Decision& decision();

  /// Feed an observation of per-cell bandwidths (bytes/s, indexed by cell
  /// id). Returns true if a re-optimization was triggered.
  bool observe(const std::vector<double>& cell_bandwidth);

  /// Full observation: bandwidths plus per-server liveness (indexed by
  /// server id). Liveness changes always re-solve; dead servers receive no
  /// assignment; all-dead falls back to device-only execution.
  bool observe(const std::vector<double>& cell_bandwidth,
               const std::vector<bool>& server_alive);

  std::size_t reoptimizations() const { return reoptimizations_; }
  /// Liveness-triggered re-optimizations (subset of reoptimizations()).
  std::size_t failovers() const { return failovers_; }
  const std::vector<bool>& server_alive() const { return alive_; }
  const ProblemInstance& instance() const { return instance_; }

 private:
  void solve();
  Decision solve_excluding_dead() const;
  Decision device_only_fallback() const;

  Options opts_;
  ProblemInstance instance_;
  std::vector<double> solved_bandwidth_;  // per cell at last solve
  std::vector<bool> alive_;               // per server, latest observation
  std::vector<bool> solved_alive_;        // per server at last solve
  Decision decision_;
  bool solved_ = false;
  std::size_t reoptimizations_ = 0;
  std::size_t failovers_ = 0;
};

}  // namespace scalpel
