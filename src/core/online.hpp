#pragma once

#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "core/admission.hpp"
#include "core/joint.hpp"
#include "core/observation.hpp"
#include "core/telemetry.hpp"
#include "core/validate.hpp"
#include "obs/audit.hpp"

namespace scalpel {

class TimeSeriesRecorder;

/// One rung of the surgery-based graceful-degradation ladder: per-device
/// SurgeryPlans that are (weakly) cheaper and less accurate than the rung
/// above, with precomputed per-device sustainable rates so overload can be
/// judged against the rung's capacity. Rung 0 is the undegraded base plan.
struct LadderRung {
  std::vector<SurgeryPlan> plans;   // per device, grants untouched
  std::vector<double> sustainable;  // per device max rate (headroom 1.0)
  double predicted_accuracy = 0.0;  // rate-weighted over devices
  double accuracy_floor = 0.0;      // min generation floor across devices
};

struct LadderOptions {
  /// Rungs generated below the base plan (ladder size <= rungs + 1 after
  /// deduplication).
  std::size_t rungs = 4;
  /// Per rung, each device's accuracy floor drops by this much below its
  /// base plan's expected accuracy — the ladder deliberately trades the
  /// configured accuracy floors for liveness under overload.
  double accuracy_step = 0.05;
  /// Enable INT8-quantized uploads from this rung down (offloading plans).
  std::size_t quantize_from = 2;
};

/// Precomputes the degradation ladder for a decision: per device and rung,
/// re-runs the exit-setting DP (surgery/exit_setting) with a progressively
/// lower accuracy floor — lower thresholds and earlier mandatory exits fall
/// out of the DP — and optionally quantizes uploads. Partition point,
/// server, and resource grants stay fixed, so every rung is feasible under
/// the same allocation. Monotonicity is enforced: a rung never has higher
/// predicted accuracy or lower sustainable rate than the one above it.
std::vector<LadderRung> build_degradation_ladder(
    const ProblemInstance& instance, const Decision& base,
    const LadderOptions& opts, const JointOptions& joint = {});

/// Online re-optimization under bandwidth dynamics and hard failures:
/// monitors the observed per-cell bandwidth and per-server liveness,
/// re-running the joint optimizer when conditions drift beyond a hysteresis
/// band (re-optimizing on every fluctuation would thrash plans that real
/// deployments cache on devices) or when any server's liveness flips (a
/// crash is a hard signal — no hysteresis). Dead servers are excluded from
/// the solve; with no server reachable the controller degrades to a
/// device-only deployment rather than failing.
class OnlineController {
 public:
  struct OverloadControlOptions {
    LadderOptions ladder;
    /// A device is overloaded when its offered rate exceeds this multiple of
    /// the current rung's sustainable rate, or its queue depth exceeds
    /// `queue_trigger`.
    double overload_margin = 1.0;
    /// The cluster is calm (eligible for recovery) when every device's
    /// offered rate is below this multiple of the *next rung up*'s
    /// sustainable rate — the gap between the two margins is the hysteresis
    /// band that prevents rung thrash.
    double recover_margin = 0.7;
    /// Queue depth (tasks buffered at the device across all stages) that
    /// flags overload regardless of the rate estimate.
    double queue_trigger = 16.0;
    /// Consecutive overloaded observation windows before stepping down.
    std::size_t trigger_windows = 2;
    /// Consecutive calm observation windows before stepping back up.
    std::size_t recovery_windows = 3;
    /// Headroom for the bottom-rung admission gate (load shedding is the
    /// last resort once the ladder is exhausted).
    double throttle_headroom = 0.9;
  };

  /// Defenses against imperfect telemetry and a misbehaving solver. Every
  /// default is transparent: a controller fed perfect observations with a
  /// healthy solver behaves bit-identically to one without this layer.
  struct RobustnessOptions {
    /// Trust policy applied to every observation before it is believed
    /// (staleness holds, outlier rejection, liveness debounce/flap freeze).
    SanitizerOptions sanitizer;
    /// Wall-clock budget per re-solve. The joint optimizer has no
    /// cooperative cancellation, so the check is post-hoc: a solve that
    /// overran is discarded and the fallback chain engages. inf disables.
    double solve_budget_seconds = std::numeric_limits<double>::infinity();
    /// After a watchdog trip, skip this many bandwidth-drift re-solves
    /// (liveness flips always re-solve — a crash is a hard signal).
    std::size_t solver_backoff_windows = 0;
    /// Run validate_plan() on every solver output before adopting it.
    bool validate_plans = true;
    PlanValidationOptions validation;
  };

  struct Options {
    /// Re-optimize when any cell's bandwidth deviates from the value used at
    /// the last solve by more than this relative factor.
    double hysteresis = 0.25;
    JointOptions joint;
    OverloadControlOptions overload;
    RobustnessOptions robustness;
    /// Test seam: when set, replaces JointOptimizer for every solve
    /// (including reduced-topology failover solves). Lets tests inject
    /// throwing, slow, or garbage solvers to drive the watchdog.
    std::function<Decision(const ProblemInstance&, const JointOptions&)>
        solver;
  };

  explicit OnlineController(const ClusterTopology& topology);
  OnlineController(const ClusterTopology& topology, Options opts);

  /// Current decision (solves on first access if needed).
  const Decision& decision();

  /// Single observation entry point. The raw observation passes through the
  /// telemetry sanitizer (rejections audited as telemetry_rejected), then:
  /// bandwidth drift beyond the hysteresis band or a believed liveness flip
  /// triggers a re-solve, guarded by the solver watchdog — on budget
  /// overrun, a throw, or a plan validate_plan() refuses, the fallback
  /// chain (last-good plan -> reduced-topology remap -> device-only)
  /// guarantees tasks stay routable. With offered_rate/queue_depth present,
  /// sustained overload additionally walks the degradation ladder and the
  /// bottom-rung admission gate (see the shim docs below). Returns true
  /// when the active decision or gate changed.
  bool observe(const Observation& o);

  /// Shim: bandwidth-only observation (every server assumed alive).
  bool observe(const std::vector<double>& cell_bandwidth);

  /// Shim: bandwidths plus per-server liveness (indexed by server id).
  /// Liveness changes always re-solve; dead servers receive no assignment;
  /// all-dead falls back to device-only execution.
  bool observe(const std::vector<double>& cell_bandwidth,
               const std::vector<bool>& server_alive);

  /// Shim: overload-aware observation — additionally ingests per-device
  /// offered load (tasks/s since the last observation) and queue depth. On
  /// sustained overload the controller walks down a precomputed degradation
  /// ladder of surgery plans (lower thresholds, earlier exits, quantized
  /// uploads) before resorting to admission-gate load shedding at the
  /// bottom rung; it walks back up — gate first, then rungs — with
  /// hysteresis once load subsides.
  bool observe(const std::vector<double>& cell_bandwidth,
               const std::vector<bool>& server_alive,
               const std::vector<double>& offered_rate,
               const std::vector<double>& queue_depth);

  std::size_t reoptimizations() const { return reoptimizations_; }
  /// Liveness-triggered re-optimizations (subset of reoptimizations()).
  std::size_t failovers() const { return failovers_; }
  /// Ladder step-downs / step-ups taken by the overload controller.
  std::size_t degradations() const { return degradations_; }
  std::size_t recoveries() const { return recoveries_; }
  /// Times the bottom-rung admission gate was engaged from a clear state.
  std::size_t throttle_activations() const { return throttle_activations_; }
  /// Observations the sanitizer altered (held, rejected, or suppressed).
  std::size_t telemetry_rejections() const { return telemetry_rejections_; }
  /// Watchdog trips: solves that threw or overran the budget.
  std::size_t solver_timeouts() const { return solver_timeouts_; }
  /// Solver outputs (or last-good candidates) validate_plan() refused.
  std::size_t plans_rejected() const { return plans_rejected_; }
  /// Times the fallback chain replaced a failed solve's output.
  std::size_t fallbacks() const { return fallbacks_; }
  /// Active ladder rung (0 = undegraded base plan).
  std::size_t current_rung() const { return rung_; }
  /// The precomputed ladder (empty until the first overload-aware observe).
  const std::vector<LadderRung>& ladder() const { return ladder_; }
  /// Per-device admission fractions in [0, 1]; empty when the gate is open.
  const std::vector<double>& admit_fraction() const { return admit_fraction_; }
  const std::vector<bool>& server_alive() const { return alive_; }
  const ProblemInstance& instance() const { return instance_; }

  /// Flight recorder of every decision change (solve, failover, rung walk,
  /// gate). Call audit_log().advance_time(now) before observe() so records
  /// carry sim time; export with to_json()/to_table().
  DecisionAuditLog& audit_log() { return audit_; }
  const DecisionAuditLog& audit_log() const { return audit_; }

  /// Registers the controller's state as time-series sources (gauges
  /// online.rung / online.admit_fraction, counters online.degradations /
  /// online.recoveries / online.reoptimizations). The recorder must outlive
  /// no samples past this controller's lifetime.
  void register_sources(TimeSeriesRecorder& recorder);

 private:
  Decision run_solver(const ProblemInstance& sub) const;
  /// One watchdog-guarded solve via failover::guarded_attempt (try/catch,
  /// wall-clock budget, validate_plan); picks device-only / reduced-topology
  /// / full solve by liveness. On failure records the failure
  /// (solver_timeout / plan_rejected) and adopts the first valid fallback
  /// from failover::fallback_chain (fallback_applied). `liveness_changed`
  /// decides whether solved_alive_ advances on fallback (a handled failover
  /// must not re-trigger every window). Returns true when the adopted plan
  /// differs from the pre-solve one.
  bool guarded_solve(bool liveness_changed);
  /// Overload-ladder / admission-gate walk over the load signals (the old
  /// rich-observe tail). `changed` carries the re-solve section's result.
  bool observe_load(const Observation& o, bool changed);
  void rebuild_ladder();
  void apply_rung();
  /// One-line summary of the active decision for audit records.
  std::string plan_summary() const;
  double predicted_accuracy() const;
  double mean_admit() const;
  /// Snapshots the before-state, to be completed by audit_commit().
  AuditRecord audit_open(AuditCause cause, std::string detail) const;
  void audit_commit(AuditRecord record);

  Options opts_;
  ProblemInstance instance_;
  std::vector<double> solved_bandwidth_;  // per cell at last solve
  std::vector<bool> alive_;               // per server, latest observation
  std::vector<bool> solved_alive_;        // per server at last solve
  Decision decision_;
  bool solved_ = false;
  std::size_t reoptimizations_ = 0;
  std::size_t failovers_ = 0;

  // Robustness state.
  TelemetrySanitizer sanitizer_;
  std::size_t telemetry_rejections_ = 0;
  std::size_t solver_timeouts_ = 0;
  std::size_t plans_rejected_ = 0;
  std::size_t fallbacks_ = 0;
  std::size_t backoff_remaining_ = 0;  // drift re-solves to skip

  // Overload-control state.
  std::vector<LadderRung> ladder_;
  std::vector<double> admit_fraction_;  // empty = gate open
  std::size_t rung_ = 0;
  std::size_t degradations_ = 0;
  std::size_t recoveries_ = 0;
  std::size_t throttle_activations_ = 0;
  std::size_t overload_streak_ = 0;
  std::size_t calm_streak_ = 0;

  DecisionAuditLog audit_;
};

}  // namespace scalpel
