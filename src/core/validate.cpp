#include "core/validate.hpp"

#include <cstdarg>
#include <cstdio>

namespace scalpel {

namespace {

PlanValidation reject(const char* fmt, ...) {
  char buf[160];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  PlanValidation v;
  v.ok = false;
  v.reason = buf;
  return v;
}

}  // namespace

PlanValidation validate_plan(const ProblemInstance& instance,
                             const Decision& decision,
                             const std::vector<bool>& server_alive,
                             const PlanValidationOptions& opts) {
  const auto& topo = instance.topology();
  const std::size_t num_devices = topo.devices().size();
  const std::size_t num_servers = topo.servers().size();
  if (decision.per_device.size() != num_devices) {
    return reject("plan covers %zu devices, topology has %zu",
                  decision.per_device.size(), num_devices);
  }
  std::vector<double> server_share(num_servers, 0.0);
  std::vector<double> cell_grant(topo.cells().size(), 0.0);
  for (std::size_t i = 0; i < num_devices; ++i) {
    const DeviceDecision& dd = decision.per_device[i];
    if (dd.plan.device_only) continue;
    if (dd.server < 0 || static_cast<std::size_t>(dd.server) >= num_servers) {
      return reject("device %zu targets unknown server %d", i,
                    static_cast<int>(dd.server));
    }
    const auto s = static_cast<std::size_t>(dd.server);
    if (!server_alive.empty() && !server_alive[s]) {
      return reject("device %zu targets dead server %zu", i, s);
    }
    if (!(dd.compute_share > 0.0) ||
        dd.compute_share > 1.0 + opts.capacity_slack) {
      return reject("device %zu compute share %.3f outside (0, 1]", i,
                    dd.compute_share);
    }
    if (!(dd.bandwidth > 0.0)) {
      return reject("device %zu bandwidth grant %.0f must be positive", i,
                    dd.bandwidth);
    }
    server_share[s] += dd.compute_share;
    const auto cell =
        static_cast<std::size_t>(topo.device(static_cast<DeviceId>(i)).cell);
    cell_grant[cell] += dd.bandwidth;
  }
  for (std::size_t s = 0; s < num_servers; ++s) {
    if (server_share[s] > 1.0 + opts.capacity_slack) {
      return reject("server %zu compute shares sum to %.3f > 1", s,
                    server_share[s]);
    }
  }
  for (std::size_t c = 0; c < cell_grant.size(); ++c) {
    const double cap = topo.cell(static_cast<CellId>(c)).bandwidth;
    if (cell_grant[c] > cap * (1.0 + opts.capacity_slack)) {
      return reject("cell %zu grants %.0f B/s exceed capacity %.0f B/s", c,
                    cell_grant[c], cap);
    }
  }
  if (opts.check_accuracy && !decision.predicted.empty()) {
    for (std::size_t i = 0; i < num_devices; ++i) {
      const double floor = topo.device(static_cast<DeviceId>(i)).min_accuracy;
      if (decision.predicted[i].expected_accuracy <
          floor - opts.accuracy_slack) {
        return reject("device %zu accuracy %.3f below floor %.3f", i,
                      decision.predicted[i].expected_accuracy, floor);
      }
    }
  }
  return PlanValidation{};
}

}  // namespace scalpel
