#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "edge/cluster.hpp"
#include "nn/graph.hpp"
#include "surgery/accuracy_model.hpp"
#include "surgery/exit_candidates.hpp"

namespace scalpel {

/// Everything static the optimizer needs about one DNN workload.
struct ModelBundle {
  Graph graph;
  std::vector<ExitCandidate> candidates;
  AccuracyModel accuracy;
};

/// A fully materialized optimization problem: the cluster plus, for every
/// distinct model name referenced by a device, its backbone graph, exit
/// candidates, and accuracy model. Bundles are shared across devices running
/// the same model (graphs can be large).
class ProblemInstance {
 public:
  /// Builds bundles from the model-zoo names referenced in `topology`.
  /// The topology is copied.
  explicit ProblemInstance(const ClusterTopology& topology);

  const ClusterTopology& topology() const { return topology_; }
  ClusterTopology& mutable_topology() { return topology_; }

  const ModelBundle& bundle_for(DeviceId id) const;
  const ModelBundle& bundle_by_model(const std::string& model_name) const;

 private:
  ClusterTopology topology_;
  std::map<std::string, std::unique_ptr<ModelBundle>> bundles_;
};

}  // namespace scalpel
