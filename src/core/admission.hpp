#pragma once

#include <vector>

#include "core/decision.hpp"
#include "core/instance.hpp"

namespace scalpel {

/// Admission control: when a deployment is overloaded even under the best
/// joint decision, *some* traffic must be refused at the device (frame
/// dropping / sampling in the motivating video-analytics apps). This module
/// computes, per device, the maximum sustainable arrival rate under a given
/// decision, and proposes a fair throttling profile that restores stability.
namespace admission {

/// Largest arrival rate (tasks/s) device `id` can sustain under `decision`
/// with every stage of its pipeline stable, holding the other devices'
/// grants fixed. Found by bisection on the three-stage stability conditions;
/// +inf when the device never offloads work it cannot drain (e.g. a
/// device-only plan with near-zero service time).
double max_sustainable_rate(const ProblemInstance& instance, DeviceId id,
                            const DeviceDecision& decision,
                            double utilization_headroom = 0.95);

struct ThrottlePlan {
  /// Per-device admitted rate (tasks/s), <= the offered arrival rate.
  std::vector<double> admitted_rate;
  /// Fraction of offered traffic admitted overall (rate-weighted).
  double admitted_fraction = 1.0;
  /// True if any device had to be throttled.
  bool throttled = false;
  /// Refinement rounds performed (1 for the one-shot propose_throttle).
  std::size_t iterations = 1;
};

/// Uniform-headroom throttling: every unstable device's rate is reduced to
/// `utilization_headroom` times its sustainable maximum; stable devices are
/// untouched. Restores per-device stability by construction (shared-resource
/// coupling is already captured by the decision's grants).
ThrottlePlan propose_throttle(const ProblemInstance& instance,
                              const Decision& decision,
                              double utilization_headroom = 0.9);

/// Cluster-level fixed point of propose_throttle: re-evaluates every
/// device's sustainable rate on the topology implied by the previous
/// iterate's admitted rates and tightens until the plan stops changing (or
/// `max_iters`). Under the current per-device stability model the bounds do
/// not depend on the other devices' rates, so the fixed point lands after
/// one refinement round — the iteration is the contract that keeps the plan
/// stable if cross-device coupling ever enters the model, and tests assert
/// the result is a true fixed point (idempotent, evaluator-stable).
ThrottlePlan propose_throttle_fixed_point(const ProblemInstance& instance,
                                          const Decision& decision,
                                          double utilization_headroom = 0.9,
                                          std::size_t max_iters = 8);

/// Applies a throttle plan to a copy of the topology (scaling arrival
/// rates), for re-optimization or simulation of the throttled system.
ClusterTopology throttled_topology(const ProblemInstance& instance,
                                   const ThrottlePlan& plan);

}  // namespace admission
}  // namespace scalpel
