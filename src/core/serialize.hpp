#pragma once

#include <string>

#include "core/decision.hpp"
#include "edge/cluster.hpp"
#include "util/json.hpp"

namespace scalpel {

/// JSON serialization of the deployment-facing objects: the cluster
/// description (so experiment configs can live in files) and the Decision
/// (so an optimized plan can be handed to device/edge agents). Round-trip
/// stable: from_json(to_json(x)) reproduces x field-for-field.
namespace serialize {

Json to_json(const SurgeryPlan& plan);
SurgeryPlan plan_from_json(const Json& j);

Json to_json(const DeviceDecision& d);
DeviceDecision device_decision_from_json(const Json& j);

/// Serializes the full decision including predictions (predictions are
/// re-derivable, so from_json ignores them; call evaluate_decision to
/// repopulate).
Json to_json(const Decision& d);
Decision decision_from_json(const Json& j);

/// Cluster topology <-> JSON. Compute/energy profiles are stored by their
/// catalog name plus explicit rate overrides, so hand-written configs stay
/// short while generated ones stay exact.
Json to_json(const ClusterTopology& topo);
ClusterTopology topology_from_json(const Json& j);

}  // namespace serialize
}  // namespace scalpel
