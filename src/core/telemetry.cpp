#include "core/telemetry.hpp"

#include <algorithm>
#include <cstdio>

#include "util/assert.hpp"

namespace scalpel {

std::string SanitizeReport::summary() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "stale=%zu outlier=%zu deferred=%zu flap=%zu",
                stale_held, outliers_rejected, flips_deferred,
                flaps_suppressed);
  return buf;
}

TelemetrySanitizer::TelemetrySanitizer(SanitizerOptions opts,
                                       std::size_t num_cells,
                                       std::size_t num_servers)
    : opts_(opts) {
  SCALPEL_REQUIRE(opts_.max_age > 0.0, "sanitizer max_age must be positive");
  SCALPEL_REQUIRE(opts_.outlier_band >= 0.0,
                  "sanitizer outlier band must be non-negative");
  SCALPEL_REQUIRE(opts_.ewma_alpha >= 0.0 && opts_.ewma_alpha <= 1.0,
                  "sanitizer ewma_alpha must be in [0, 1]");
  SCALPEL_REQUIRE(opts_.median_window >= 1,
                  "sanitizer median window must be at least 1");
  SCALPEL_REQUIRE(opts_.confirm_windows >= 1,
                  "sanitizer confirm_windows must be at least 1");
  cells_.resize(num_cells);
  servers_.resize(num_servers);
  // Everything starts up, matching the controller and the simulator.
  believed_alive_.assign(num_servers, true);
}

bool TelemetrySanitizer::detector_ready(const CellState& st) const {
  if (opts_.outlier_band <= 0.0) return false;
  if (opts_.ewma_alpha > 0.0) return st.ewma_ready;
  return st.window.size() >= opts_.median_window;
}

double TelemetrySanitizer::reference(const CellState& st) const {
  if (opts_.ewma_alpha > 0.0) return st.ewma;
  std::vector<double> sorted(st.window.begin(), st.window.end());
  auto mid = sorted.begin() + static_cast<std::ptrdiff_t>(sorted.size() / 2);
  std::nth_element(sorted.begin(), mid, sorted.end());
  return *mid;
}

SanitizeReport TelemetrySanitizer::apply(Observation& o) {
  SCALPEL_REQUIRE(o.cell_bandwidth.size() == cells_.size(),
                  "sanitizer observation must cover every cell");
  SCALPEL_REQUIRE(o.server_alive.size() == servers_.size(),
                  "sanitizer observation must cover every server");
  SanitizeReport report;

  // Freshness/age metadata is only attached when a telemetry channel sits
  // between the cluster and the controller. Without it the observation IS
  // the ground truth — second-guessing it (outlier holds, debounce) would
  // only delay reaction to real events, so the trust policy stands down.
  const bool bw_measured = !o.bw_fresh.empty() || !o.bw_age.empty();
  const bool alive_measured = !o.alive_fresh.empty();

  for (std::size_t c = 0; c < cells_.size(); ++c) {
    CellState& st = cells_[c];
    const bool fresh = o.bw_fresh.empty() || o.bw_fresh[c];
    const double age = o.bw_age.empty() ? 0.0 : o.bw_age[c];
    const double v = o.cell_bandwidth[c];
    if (!bw_measured) {
      st.distrust = 0;
      st.last_good = v;
      st.has_good = true;
      continue;
    }
    if (age > opts_.max_age) {
      // Too old to act on. Hold the last value this filter accepted; a
      // channel repeating a weeks-old reading must not masquerade as news.
      if (st.has_good && st.last_good != v) {
        o.cell_bandwidth[c] = st.last_good;
        ++report.stale_held;
      }
      continue;
    }
    if (!fresh) {
      // A dropped report repeats the previous delivery — within the trust
      // window that is already the believed value; nothing to learn.
      continue;
    }
    if (detector_ready(st)) {
      const double ref = reference(st);
      if (ref > 0.0 && std::abs(v - ref) > opts_.outlier_band * ref) {
        ++st.distrust;
        if (st.distrust <= opts_.distrust_limit) {
          o.cell_bandwidth[c] = st.has_good ? st.last_good : ref;
          ++report.outliers_rejected;
          continue;
        }
        // Capitulate: distrust_limit consecutive "outliers" is a level
        // shift, not noise. Accept and rebuild the reference from scratch.
        st.window.clear();
        st.ewma_ready = false;
      }
    }
    st.distrust = 0;
    st.last_good = v;
    st.has_good = true;
    st.window.push_back(v);
    while (st.window.size() > opts_.median_window) st.window.pop_front();
    if (opts_.ewma_alpha > 0.0) {
      st.ewma = st.ewma_ready
                    ? opts_.ewma_alpha * v + (1.0 - opts_.ewma_alpha) * st.ewma
                    : v;
      st.ewma_ready = true;
    }
  }

  for (std::size_t s = 0; s < servers_.size(); ++s) {
    ServerState& st = servers_[s];
    const bool fresh = o.alive_fresh.empty() || o.alive_fresh[s];
    const bool raw = o.server_alive[s];
    if (!alive_measured) {
      believed_alive_[s] = raw;
      st.flip_streak = 0;
      continue;
    }
    if (!fresh) {
      // Dropped liveness report: keep believing what we believed.
      o.server_alive[s] = believed_alive_[s];
      continue;
    }
    ++st.observations;
    if (st.frozen) {
      // Unfreeze on *self-consistent* readings, whichever state they claim,
      // and adopt that state. Demanding agreement with the frozen belief
      // would deadlock a server frozen "up" through a real outage: the
      // truthful "down" stream never matches the belief, and the plan keeps
      // routing into the hole.
      if (st.stable > 0 && raw == st.last_raw) {
        ++st.stable;
      } else {
        st.last_raw = raw;
        st.stable = 1;
      }
      if (st.stable >= opts_.flap_hold) {
        st.frozen = false;
        st.stable = 0;
        st.flip_streak = 0;
        st.transitions.clear();
        believed_alive_[s] = raw;
      } else if (raw != believed_alive_[s]) {
        ++report.flaps_suppressed;
      }
      o.server_alive[s] = believed_alive_[s];
      continue;
    }
    if (raw != believed_alive_[s]) {
      if (++st.flip_streak >= opts_.confirm_windows) {
        st.flip_streak = 0;
        if (opts_.flap_threshold > 0) {
          st.transitions.push_back(st.observations);
          while (!st.transitions.empty() &&
                 st.transitions.front() + opts_.flap_window <=
                     st.observations) {
            st.transitions.pop_front();
          }
          if (st.transitions.size() >= opts_.flap_threshold) {
            // Blinking server: freeze the believed state rather than
            // thrashing the plan once per blink.
            st.frozen = true;
            st.stable = 0;
            ++report.flaps_suppressed;
            o.server_alive[s] = believed_alive_[s];
            continue;
          }
        }
        believed_alive_[s] = raw;
      } else {
        ++report.flips_deferred;
      }
    } else {
      st.flip_streak = 0;
    }
    o.server_alive[s] = believed_alive_[s];
  }
  return report;
}

}  // namespace scalpel
