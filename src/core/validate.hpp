#pragma once

#include <string>
#include <vector>

#include "core/decision.hpp"
#include "core/instance.hpp"

namespace scalpel {

struct PlanValidationOptions {
  /// Relative slack on the per-server compute-share sum and the per-cell
  /// bandwidth-grant sum (solvers and remaps accumulate FP error; a few
  /// percent of oversubscription is noise, 2x is a garbage plan).
  double capacity_slack = 0.02;
  /// Also reject plans whose evaluated accuracy falls below a device's
  /// configured floor (minus accuracy_slack). Off by default: the joint
  /// optimizer may legitimately trade an unreachable floor for feasibility,
  /// and the degradation ladder lowers floors on purpose — enable this only
  /// for deployments where the floor is a hard contract.
  bool check_accuracy = false;
  double accuracy_slack = 1e-9;
};

/// Outcome of validate_plan: ok, or the first defect found (one line, used
/// verbatim as the plan_rejected audit detail).
struct PlanValidation {
  bool ok = true;
  std::string reason;
};

/// Safety gate between the solver and the live deployment: a plan is
/// rejected when it would strand work or oversubscribe hardware —
///   - wrong arity (not one DeviceDecision per device);
///   - an offloading device pointing at an invalid or dead server
///     (dispatching to a corpse strands every task routed there);
///   - a non-positive or > 1 compute share, or a non-positive bandwidth
///     grant, on an offloading device;
///   - per-server share sums or per-cell grant sums beyond capacity (plus
///     slack) — admitted work could then never drain;
///   - optionally, evaluated accuracy below a device's configured floor.
/// `server_alive` is indexed by server id (empty = every server up).
PlanValidation validate_plan(const ProblemInstance& instance,
                             const Decision& decision,
                             const std::vector<bool>& server_alive,
                             const PlanValidationOptions& opts = {});

}  // namespace scalpel
