#include "core/online.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <string>

#include "core/failover.hpp"
#include "core/objective.hpp"
#include "obs/timeseries.hpp"
#include "surgery/exit_setting.hpp"
#include "util/assert.hpp"

namespace scalpel {

namespace {

bool same_plan(const SurgeryPlan& a, const SurgeryPlan& b) {
  if (a.device_only != b.device_only ||
      a.quantize_upload != b.quantize_upload ||
      a.partition_after != b.partition_after ||
      a.policy.exits.size() != b.policy.exits.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.policy.exits.size(); ++i) {
    if (a.policy.exits[i].candidate != b.policy.exits[i].candidate ||
        a.policy.exits[i].theta != b.policy.exits[i].theta) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<LadderRung> build_degradation_ladder(
    const ProblemInstance& instance, const Decision& base,
    const LadderOptions& opts, const JointOptions& joint) {
  const auto& topo = instance.topology();
  const std::size_t n = topo.devices().size();
  SCALPEL_REQUIRE(base.per_device.size() == n,
                  "ladder base must cover every device");
  SCALPEL_REQUIRE(opts.accuracy_step > 0.0,
                  "ladder accuracy step must be positive");

  std::vector<LadderRung> ladder;
  std::vector<double> prev_acc(n);

  double rate_total = 0.0;
  for (const auto& d : topo.devices()) rate_total += d.arrival_rate;

  LadderRung r0;
  r0.accuracy_floor = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<DeviceId>(i);
    const PlanModel pm = build_plan_model(instance, id, base.per_device[i]);
    prev_acc[i] = pm.expected_accuracy();
    r0.plans.push_back(base.per_device[i].plan);
    r0.sustainable.push_back(
        admission::max_sustainable_rate(instance, id, base.per_device[i], 1.0));
    r0.predicted_accuracy +=
        topo.device(id).arrival_rate / rate_total * prev_acc[i];
    r0.accuracy_floor = std::min(r0.accuracy_floor, prev_acc[i]);
  }
  const std::vector<double> base_acc = prev_acc;
  ladder.push_back(std::move(r0));

  for (std::size_t k = 1; k <= opts.rungs; ++k) {
    const LadderRung& prev = ladder.back();
    LadderRung rung;
    rung.accuracy_floor = 1.0;
    std::vector<double> rung_acc(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto id = static_cast<DeviceId>(i);
      const auto& device = topo.device(id);
      const auto& bundle = instance.bundle_for(id);
      const double floor_k =
          std::max(0.0, base_acc[i] - static_cast<double>(k) *
                                          opts.accuracy_step);
      ExitSettingOptions eo;
      eo.min_accuracy = floor_k;
      eo.theta_grid = joint.theta_grid;
      eo.max_exits = joint.max_exits;
      eo.coverage_bins = joint.dp_coverage_bins;
      eo.difficulty = device.difficulty;
      SurgeryPlan plan = prev.plans[i];
      const auto res = dp_exit_setting(bundle.graph, bundle.candidates,
                                       bundle.accuracy, device.compute, eo);
      if (res.feasible) plan.policy = res.policy;
      if (!plan.device_only && k >= opts.quantize_from) {
        plan.quantize_upload = true;
      }
      DeviceDecision dd = base.per_device[i];
      dd.plan = plan;
      double acc = build_plan_model(instance, id, dd).expected_accuracy();
      double sustainable =
          admission::max_sustainable_rate(instance, id, dd, 1.0);
      // The DP only promises the floor, not ordering between rungs: reject a
      // candidate that would raise accuracy or shrink capacity relative to
      // the rung above, keeping the ladder monotone in both.
      if (acc > prev_acc[i] + 1e-9 ||
          sustainable < prev.sustainable[i] - 1e-9) {
        plan = prev.plans[i];
        acc = prev_acc[i];
        sustainable = prev.sustainable[i];
      }
      rung.plans.push_back(plan);
      rung.sustainable.push_back(sustainable);
      rung_acc[i] = acc;
      rung.predicted_accuracy += device.arrival_rate / rate_total * acc;
      rung.accuracy_floor = std::min(rung.accuracy_floor, floor_k);
    }
    bool distinct = false;
    for (std::size_t i = 0; i < n && !distinct; ++i) {
      distinct = !same_plan(rung.plans[i], prev.plans[i]);
    }
    // A duplicate rung is skipped, but deeper floors may still unlock new
    // plans, so keep descending.
    if (distinct) {
      prev_acc = rung_acc;
      ladder.push_back(std::move(rung));
    }
  }
  return ladder;
}

std::string OnlineController::plan_summary() const {
  if (!solved_) return "unsolved";
  std::size_t offload = 0;
  std::size_t quantized = 0;
  for (const auto& dd : decision_.per_device) {
    if (!dd.plan.device_only) ++offload;
    if (dd.plan.quantize_upload) ++quantized;
  }
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "%s rung=%zu offload=%zu/%zu quant=%zu acc=%.3f",
                decision_.scheme.empty() ? "plan" : decision_.scheme.c_str(),
                rung_, offload, decision_.per_device.size(), quantized,
                predicted_accuracy());
  return buf;
}

double OnlineController::predicted_accuracy() const {
  if (decision_.predicted.empty()) return 0.0;
  const auto& devices = instance_.topology().devices();
  double rate_total = 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < decision_.predicted.size(); ++i) {
    const double rate = i < devices.size() ? devices[i].arrival_rate : 1.0;
    rate_total += rate;
    acc += rate * decision_.predicted[i].expected_accuracy;
  }
  return rate_total > 0.0 ? acc / rate_total : 0.0;
}

double OnlineController::mean_admit() const {
  if (admit_fraction_.empty()) return 1.0;
  double sum = 0.0;
  for (double f : admit_fraction_) sum += f;
  return sum / static_cast<double>(admit_fraction_.size());
}

void OnlineController::register_sources(TimeSeriesRecorder& recorder) {
  recorder.register_gauge("online.rung", [this] {
    return static_cast<double>(rung_);
  });
  recorder.register_gauge("online.admit_fraction",
                          [this] { return mean_admit(); });
  recorder.register_counter("online.degradations", [this] {
    return static_cast<double>(degradations_);
  });
  recorder.register_counter("online.recoveries", [this] {
    return static_cast<double>(recoveries_);
  });
  recorder.register_counter("online.reoptimizations", [this] {
    return static_cast<double>(reoptimizations_);
  });
}

AuditRecord OnlineController::audit_open(AuditCause cause,
                                         std::string detail) const {
  AuditRecord r;
  r.cause = cause;
  r.detail = std::move(detail);
  r.plan_before = plan_summary();
  r.rung_before = rung_;
  r.accuracy_before = predicted_accuracy();
  r.admit_before = mean_admit();
  return r;
}

void OnlineController::audit_commit(AuditRecord record) {
  record.plan_after = plan_summary();
  record.rung_after = rung_;
  record.accuracy_after = predicted_accuracy();
  record.admit_after = mean_admit();
  audit_.append(std::move(record));
}

OnlineController::OnlineController(const ClusterTopology& topology)
    : OnlineController(topology, Options{}) {}

OnlineController::OnlineController(const ClusterTopology& topology,
                                   Options opts)
    : opts_(std::move(opts)), instance_(topology) {
  SCALPEL_REQUIRE(opts_.hysteresis >= 0.0, "hysteresis must be non-negative");
  SCALPEL_REQUIRE(opts_.robustness.solve_budget_seconds > 0.0,
                  "solve budget must be positive");
  for (const auto& c : instance_.topology().cells()) {
    solved_bandwidth_.push_back(c.bandwidth);
  }
  alive_.assign(instance_.topology().servers().size(), true);
  solved_alive_ = alive_;
  sanitizer_ = TelemetrySanitizer(opts_.robustness.sanitizer,
                                  instance_.topology().cells().size(),
                                  alive_.size());
}

Decision OnlineController::run_solver(const ProblemInstance& sub) const {
  if (opts_.solver) return opts_.solver(sub, opts_.joint);
  return JointOptimizer(opts_.joint).optimize(sub);
}

bool OnlineController::guarded_solve(bool liveness_changed) {
  const RobustnessOptions& ro = opts_.robustness;
  failover::GuardOptions guard;
  guard.budget_seconds = ro.solve_budget_seconds;
  guard.validate = ro.validate_plans;
  guard.validation = ro.validation;

  // The solve closure never touches controller state, so a failed attempt
  // needs no restore — decision_ and the solved-state anchors only advance
  // when the watchdog accepts the output.
  failover::GuardedOutcome outcome = failover::guarded_attempt(
      instance_, alive_, guard, [&]() -> Decision {
        bool any_alive = false;
        bool all_alive = true;
        for (bool a : alive_) {
          any_alive = any_alive || a;
          all_alive = all_alive && a;
        }
        if (!any_alive) return failover::device_only_fallback(instance_);
        if (!all_alive) {
          return failover::solve_excluding_dead(
              instance_, alive_,
              [&](const ProblemInstance& sub) { return run_solver(sub); });
        }
        return run_solver(instance_);
      });
  if (outcome.ok) {
    decision_ = std::move(outcome.decision);
    for (const auto& c : instance_.topology().cells()) {
      solved_bandwidth_[static_cast<std::size_t>(c.id)] = c.bandwidth;
    }
    solved_alive_ = alive_;
    solved_ = true;
    // Explicit reset: any accepted solve — drift, failover, or initial —
    // clears the watchdog backoff so one bad window cannot linger.
    backoff_remaining_ = 0;
    return true;
  }

  if (outcome.fail_cause == AuditCause::kPlanRejected) {
    ++plans_rejected_;
  } else {
    ++solver_timeouts_;
  }
  audit_commit(audit_open(outcome.fail_cause, outcome.fail_detail));

  ++fallbacks_;
  backoff_remaining_ = ro.solver_backoff_windows;
  AuditRecord fb = audit_open(AuditCause::kFallbackApplied, "");
  failover::FallbackOutcome fallen = failover::fallback_chain(
      instance_, alive_, solved_ ? &decision_ : nullptr, guard);
  if (fallen.remap_rejected) ++plans_rejected_;
  fb.detail = fallen.detail;
  const bool changed = !fallen.kept_previous;
  if (!fallen.kept_previous) decision_ = std::move(fallen.decision);
  solved_ = true;
  // A handled failover must not re-trigger every window; stale bandwidth
  // anchors stay, so drift re-attempts a real solve once backoff clears.
  if (liveness_changed) solved_alive_ = alive_;
  audit_commit(std::move(fb));
  return changed;
}

const Decision& OnlineController::decision() {
  if (!solved_) {
    AuditRecord r = audit_open(AuditCause::kInitialSolve, "first solve");
    guarded_solve(false);
    audit_commit(std::move(r));
  }
  return decision_;
}

bool OnlineController::observe(const std::vector<double>& cell_bandwidth) {
  return observe(cell_bandwidth,
                 std::vector<bool>(instance_.topology().servers().size(),
                                   true));
}

bool OnlineController::observe(const std::vector<double>& cell_bandwidth,
                               const std::vector<bool>& server_alive) {
  Observation o;
  o.time = audit_.time();
  o.cell_bandwidth = cell_bandwidth;
  o.server_alive = server_alive;
  return observe(o);
}

bool OnlineController::observe(const std::vector<double>& cell_bandwidth,
                               const std::vector<bool>& server_alive,
                               const std::vector<double>& offered_rate,
                               const std::vector<double>& queue_depth) {
  Observation o;
  o.time = audit_.time();
  o.cell_bandwidth = cell_bandwidth;
  o.server_alive = server_alive;
  o.offered_rate = offered_rate;
  o.queue_depth = queue_depth;
  return observe(o);
}

bool OnlineController::observe(const Observation& raw) {
  const auto& topo = instance_.topology();
  const std::size_t num_devices = topo.devices().size();
  const bool has_load = !raw.offered_rate.empty() || !raw.queue_depth.empty();
  SCALPEL_REQUIRE(!has_load || (raw.offered_rate.size() == num_devices &&
                                raw.queue_depth.size() == num_devices),
                  "overload observation must cover every device");
  SCALPEL_REQUIRE(raw.cell_bandwidth.size() == topo.cells().size(),
                  "observation must cover every cell");
  SCALPEL_REQUIRE(raw.server_alive.size() == topo.servers().size(),
                  "observation must cover every server");
  if (raw.time > audit_.time()) audit_.advance_time(raw.time);

  Observation o = raw;
  const SanitizeReport rep = sanitizer_.apply(o);
  if (rep.any()) {
    ++telemetry_rejections_;
    audit_commit(audit_open(AuditCause::kTelemetryRejected, rep.summary()));
  }

  if (!solved_) {
    AuditRecord r = audit_open(AuditCause::kInitialSolve, "first solve");
    guarded_solve(false);
    audit_commit(std::move(r));
  }
  bool changed = false;
  bool drifted = false;
  std::string detail;
  for (std::size_t c = 0; c < o.cell_bandwidth.size(); ++c) {
    SCALPEL_REQUIRE(o.cell_bandwidth[c] > 0.0,
                    "observed bandwidth must be positive");
    const double ratio = o.cell_bandwidth[c] / solved_bandwidth_[c];
    if (std::abs(ratio - 1.0) > opts_.hysteresis) {
      drifted = true;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "cell %zu bandwidth %+.0f%%", c,
                    (ratio - 1.0) * 100.0);
      detail = buf;
      break;
    }
  }
  const bool liveness_changed = o.server_alive != solved_alive_;
  if (!drifted && !liveness_changed) {
    alive_ = o.server_alive;
  } else if (!liveness_changed && backoff_remaining_ > 0) {
    // Watchdog backoff: a recent solve failed; don't hammer a broken solver
    // over a soft signal. (Liveness flips bypass backoff — a crash is hard.)
    --backoff_remaining_;
    alive_ = o.server_alive;
  } else {
    if (liveness_changed) {
      for (std::size_t s = 0; s < o.server_alive.size(); ++s) {
        if (o.server_alive[s] == solved_alive_[s]) continue;
        if (!detail.empty()) detail += ", ";
        detail += "server " + std::to_string(s) +
                  (o.server_alive[s] ? " up" : " down");
      }
    }
    // Adopt the believed conditions and re-solve under the watchdog.
    auto& mutable_topo = instance_.mutable_topology();
    for (std::size_t c = 0; c < o.cell_bandwidth.size(); ++c) {
      mutable_topo.set_cell_bandwidth(static_cast<CellId>(c),
                                      o.cell_bandwidth[c]);
    }
    alive_ = o.server_alive;
    AuditRecord r = audit_open(
        liveness_changed ? AuditCause::kFailover : AuditCause::kResolve,
        std::move(detail));
    changed = guarded_solve(liveness_changed);
    ++reoptimizations_;
    if (liveness_changed) ++failovers_;
    if (!ladder_.empty()) rebuild_ladder();
    audit_commit(std::move(r));
  }
  if (!has_load) return changed;
  return observe_load(o, changed);
}

void OnlineController::rebuild_ladder() {
  ladder_ = build_degradation_ladder(instance_, decision_,
                                     opts_.overload.ladder, opts_.joint);
  if (rung_ >= ladder_.size()) rung_ = ladder_.size() - 1;
  if (rung_ > 0) apply_rung();
}

void OnlineController::apply_rung() {
  for (std::size_t i = 0; i < decision_.per_device.size(); ++i) {
    decision_.per_device[i].plan = ladder_[rung_].plans[i];
  }
  evaluate_decision(instance_, decision_);
}

bool OnlineController::observe_load(const Observation& obs, bool changed) {
  const std::size_t n = instance_.topology().devices().size();
  const std::vector<double>& offered_rate = obs.offered_rate;
  const std::vector<double>& queue_depth = obs.queue_depth;
  // The base observation rebuilds the ladder itself when it re-solves (the
  // ladder is anchored to the solved plans); first call builds it here.
  if (ladder_.empty()) rebuild_ladder();

  const auto& o = opts_.overload;
  const LadderRung& cur = ladder_[rung_];
  const bool gated = !admit_fraction_.empty();
  // Recovery unwinds in reverse order of escalation — the gate clears
  // before any rung climbs — so calm is judged against what the next
  // recovery step must sustain.
  const LadderRung& target = gated ? cur : ladder_[rung_ > 0 ? rung_ - 1 : 0];
  bool overloaded = false;
  bool calm = true;
  std::string trigger;
  for (std::size_t i = 0; i < n; ++i) {
    SCALPEL_REQUIRE(offered_rate[i] >= 0.0 && queue_depth[i] >= 0.0,
                    "offered rate and queue depth must be non-negative");
    if (offered_rate[i] > o.overload_margin * cur.sustainable[i] + 1e-12 ||
        queue_depth[i] > o.queue_trigger) {
      if (!overloaded) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "device %zu rate %.2f/%.2f tasks/s queue %.0f", i,
                      offered_rate[i], cur.sustainable[i], queue_depth[i]);
        trigger = buf;
      }
      overloaded = true;
    }
    if (offered_rate[i] > o.recover_margin * target.sustainable[i] ||
        queue_depth[i] > 0.5 * o.queue_trigger) {
      calm = false;
    }
  }

  if (overloaded) {
    calm_streak_ = 0;
    if (++overload_streak_ >= o.trigger_windows) {
      overload_streak_ = 0;
      if (rung_ + 1 < ladder_.size()) {
        AuditRecord r = audit_open(AuditCause::kRungDown, std::move(trigger));
        ++rung_;
        ++degradations_;
        apply_rung();
        changed = true;
        audit_commit(std::move(r));
      } else {
        // Ladder exhausted: shed load at the door, scaled so admitted
        // traffic fits under the bottom rung's capacity.
        std::vector<double> gate(n, 1.0);
        for (std::size_t i = 0; i < n; ++i) {
          if (offered_rate[i] <= 0.0) continue;
          const double cap = o.throttle_headroom * cur.sustainable[i];
          gate[i] = std::clamp(cap / offered_rate[i], 0.0, 1.0);
        }
        if (gate != admit_fraction_) {
          AuditRecord r = audit_open(
              gated ? AuditCause::kThrottleAdjust : AuditCause::kThrottleOn,
              std::move(trigger));
          if (!gated) ++throttle_activations_;
          admit_fraction_ = std::move(gate);
          changed = true;
          audit_commit(std::move(r));
        }
      }
    }
  } else if (calm) {
    overload_streak_ = 0;
    if (++calm_streak_ >= o.recovery_windows) {
      calm_streak_ = 0;
      const std::string calm_detail =
          "calm for " + std::to_string(o.recovery_windows) + " windows";
      if (gated) {
        AuditRecord r = audit_open(AuditCause::kThrottleOff, calm_detail);
        admit_fraction_.clear();
        changed = true;
        audit_commit(std::move(r));
      } else if (rung_ > 0) {
        AuditRecord r = audit_open(AuditCause::kRungUp, calm_detail);
        --rung_;
        ++recoveries_;
        apply_rung();
        changed = true;
        audit_commit(std::move(r));
      }
    }
  } else {
    overload_streak_ = 0;
    calm_streak_ = 0;
  }
  return changed;
}

}  // namespace scalpel
