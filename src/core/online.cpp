#include "core/online.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace scalpel {

OnlineController::OnlineController(const ClusterTopology& topology)
    : OnlineController(topology, Options{}) {}

OnlineController::OnlineController(const ClusterTopology& topology,
                                   Options opts)
    : opts_(std::move(opts)), instance_(topology) {
  SCALPEL_REQUIRE(opts_.hysteresis >= 0.0, "hysteresis must be non-negative");
  for (const auto& c : instance_.topology().cells()) {
    solved_bandwidth_.push_back(c.bandwidth);
  }
}

void OnlineController::solve() {
  const JointOptimizer optimizer(opts_.joint);
  decision_ = optimizer.optimize(instance_);
  for (const auto& c : instance_.topology().cells()) {
    solved_bandwidth_[static_cast<std::size_t>(c.id)] = c.bandwidth;
  }
  solved_ = true;
}

const Decision& OnlineController::decision() {
  if (!solved_) solve();
  return decision_;
}

bool OnlineController::observe(const std::vector<double>& cell_bandwidth) {
  SCALPEL_REQUIRE(
      cell_bandwidth.size() == instance_.topology().cells().size(),
      "observation must cover every cell");
  if (!solved_) solve();
  bool drifted = false;
  for (std::size_t c = 0; c < cell_bandwidth.size(); ++c) {
    SCALPEL_REQUIRE(cell_bandwidth[c] > 0.0,
                    "observed bandwidth must be positive");
    const double ratio = cell_bandwidth[c] / solved_bandwidth_[c];
    if (std::abs(ratio - 1.0) > opts_.hysteresis) {
      drifted = true;
      break;
    }
  }
  if (!drifted) return false;
  // Adopt the observed conditions and re-solve.
  auto& topo = instance_.mutable_topology();
  for (std::size_t c = 0; c < cell_bandwidth.size(); ++c) {
    topo.set_cell_bandwidth(static_cast<CellId>(c), cell_bandwidth[c]);
  }
  solve();
  ++reoptimizations_;
  return true;
}

}  // namespace scalpel
