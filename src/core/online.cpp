#include "core/online.hpp"

#include <cmath>

#include "core/objective.hpp"
#include "util/assert.hpp"

namespace scalpel {

OnlineController::OnlineController(const ClusterTopology& topology)
    : OnlineController(topology, Options{}) {}

OnlineController::OnlineController(const ClusterTopology& topology,
                                   Options opts)
    : opts_(std::move(opts)), instance_(topology) {
  SCALPEL_REQUIRE(opts_.hysteresis >= 0.0, "hysteresis must be non-negative");
  for (const auto& c : instance_.topology().cells()) {
    solved_bandwidth_.push_back(c.bandwidth);
  }
  alive_.assign(instance_.topology().servers().size(), true);
  solved_alive_ = alive_;
}

Decision OnlineController::device_only_fallback() const {
  Decision d;
  d.scheme = "device_fallback";
  d.per_device.resize(instance_.topology().devices().size());
  for (auto& dd : d.per_device) dd.plan.device_only = true;
  evaluate_decision(instance_, d);
  return d;
}

Decision OnlineController::solve_excluding_dead() const {
  // Rebuild the topology with only the live servers (ids compact to
  // 0..k-1), solve, then map the chosen server ids back.
  const auto& topo = instance_.topology();
  ClusterTopology reduced;
  for (const auto& c : topo.cells()) reduced.add_cell(c);
  for (const auto& d : topo.devices()) reduced.add_device(d);
  std::vector<ServerId> live_ids;
  for (const auto& s : topo.servers()) {
    if (!alive_[static_cast<std::size_t>(s.id)]) continue;
    live_ids.push_back(s.id);
    reduced.add_server(s);
  }
  const ProblemInstance sub(reduced);
  Decision d = JointOptimizer(opts_.joint).optimize(sub);
  for (auto& dd : d.per_device) {
    if (dd.plan.device_only) continue;
    dd.server = live_ids[static_cast<std::size_t>(dd.server)];
  }
  // Re-evaluate against the full instance so predictions and the grant
  // validation refer to the real server ids.
  evaluate_decision(instance_, d);
  return d;
}

void OnlineController::solve() {
  bool any_alive = false;
  bool all_alive = true;
  for (bool a : alive_) {
    any_alive = any_alive || a;
    all_alive = all_alive && a;
  }
  if (!any_alive) {
    decision_ = device_only_fallback();
  } else if (!all_alive) {
    decision_ = solve_excluding_dead();
  } else {
    const JointOptimizer optimizer(opts_.joint);
    decision_ = optimizer.optimize(instance_);
  }
  for (const auto& c : instance_.topology().cells()) {
    solved_bandwidth_[static_cast<std::size_t>(c.id)] = c.bandwidth;
  }
  solved_alive_ = alive_;
  solved_ = true;
}

const Decision& OnlineController::decision() {
  if (!solved_) solve();
  return decision_;
}

bool OnlineController::observe(const std::vector<double>& cell_bandwidth) {
  return observe(cell_bandwidth,
                 std::vector<bool>(instance_.topology().servers().size(),
                                   true));
}

bool OnlineController::observe(const std::vector<double>& cell_bandwidth,
                               const std::vector<bool>& server_alive) {
  SCALPEL_REQUIRE(
      cell_bandwidth.size() == instance_.topology().cells().size(),
      "observation must cover every cell");
  SCALPEL_REQUIRE(
      server_alive.size() == instance_.topology().servers().size(),
      "observation must cover every server");
  if (!solved_) solve();
  bool drifted = false;
  for (std::size_t c = 0; c < cell_bandwidth.size(); ++c) {
    SCALPEL_REQUIRE(cell_bandwidth[c] > 0.0,
                    "observed bandwidth must be positive");
    const double ratio = cell_bandwidth[c] / solved_bandwidth_[c];
    if (std::abs(ratio - 1.0) > opts_.hysteresis) {
      drifted = true;
      break;
    }
  }
  const bool liveness_changed = server_alive != solved_alive_;
  if (!drifted && !liveness_changed) {
    alive_ = server_alive;
    return false;
  }
  // Adopt the observed conditions and re-solve.
  auto& topo = instance_.mutable_topology();
  for (std::size_t c = 0; c < cell_bandwidth.size(); ++c) {
    topo.set_cell_bandwidth(static_cast<CellId>(c), cell_bandwidth[c]);
  }
  alive_ = server_alive;
  solve();
  ++reoptimizations_;
  if (liveness_changed) ++failovers_;
  return true;
}

}  // namespace scalpel
