#include "core/objective.hpp"

#include <cmath>
#include <limits>

#include "profile/latency_model.hpp"
#include "sched/queueing.hpp"
#include "util/assert.hpp"

namespace scalpel {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// PlanModel for a decision: full-speed server profile; the compute share
/// enters through the queueing term, not the profile.
PlanModel make_plan_model(const ProblemInstance& instance, DeviceId id,
                          const DeviceDecision& decision) {
  const auto& dev = instance.topology().device(id);
  const auto& bundle = instance.bundle_for(id);
  LinkSpec link;
  if (decision.plan.device_only) {
    link.bandwidth = 1.0;  // unused; PlanModel requires a positive rate
    link.rtt = 0.0;
    return PlanModel(bundle.graph, bundle.candidates, decision.plan,
                     bundle.accuracy, dev.compute, dev.compute, link,
                     dev.difficulty);
  }
  SCALPEL_REQUIRE(decision.server >= 0, "offloading decision needs a server");
  SCALPEL_REQUIRE(decision.bandwidth > 0.0,
                  "offloading decision needs bandwidth");
  SCALPEL_REQUIRE(decision.compute_share > 0.0 && decision.compute_share <= 1.0,
                  "compute share must be in (0, 1]");
  const auto& server = instance.topology().server(decision.server);
  link.bandwidth = decision.bandwidth;
  link.rtt = instance.topology().path_rtt(id, decision.server);
  return PlanModel(bundle.graph, bundle.candidates, decision.plan,
                   bundle.accuracy, dev.compute, server.compute, link,
                   dev.difficulty);
}

/// Per-stage expected sojourns of the tandem network (see objective.hpp).
/// Returns false (and leaves outputs +inf) when any stage is unstable.
struct StageTimes {
  double device = 0.0;  // unconditional (all tasks)
  double upload = 0.0;  // conditional on offload, incl. rtt
  double server = 0.0;  // conditional on offload
};

bool stage_times(const ProblemInstance& instance, DeviceId id,
                 const DeviceDecision& decision, const PlanBreakdown& b,
                 bool queueing_on, StageTimes* out) {
  const auto& dev = instance.topology().device(id);
  // Stage 1: device M/G/1.
  if (queueing_on) {
    out->device = queueing::mg1_sojourn(dev.arrival_rate,
                                        b.expected_device_time,
                                        b.device_time_m2);
  } else {
    out->device = b.expected_device_time;
  }
  if (!std::isfinite(out->device)) return false;
  if (decision.plan.device_only || b.offload_prob <= 0.0) return true;

  const double lambda_off = dev.arrival_rate * b.offload_prob;
  const double rtt = instance.topology().path_rtt(id, decision.server);
  // Stage 2: upload M/D/1 on the granted bandwidth.
  const double s_up =
      static_cast<double>(b.upload_bytes) / decision.bandwidth;
  out->upload =
      (queueing_on ? queueing::md1_sojourn(lambda_off, s_up) : s_up) + rtt;
  if (!std::isfinite(out->upload)) return false;
  // Stage 3: server M/G/1 on the compute-share slice.
  const double m1 = b.server_time_cond_m1 / decision.compute_share;
  const double m2 = b.server_time_cond_m2 /
                    (decision.compute_share * decision.compute_share);
  out->server = queueing_on ? queueing::mg1_sojourn(lambda_off, m1, m2) : m1;
  return std::isfinite(out->server);
}

}  // namespace

PlanModel build_plan_model(const ProblemInstance& instance, DeviceId id,
                           const DeviceDecision& decision) {
  return make_plan_model(instance, id, decision);
}

DevicePrediction evaluate_device(const ProblemInstance& instance, DeviceId id,
                                 const DeviceDecision& decision,
                                 const EvalOptions& opts) {
  const auto& dev = instance.topology().device(id);
  const PlanModel pm = make_plan_model(instance, id, decision);
  const auto& b = pm.breakdown();

  DevicePrediction pred;
  pred.expected_accuracy = b.expected_accuracy;
  pred.offload_prob = b.offload_prob;
  pred.meets_accuracy = b.expected_accuracy >= dev.min_accuracy - 1e-9;

  StageTimes st;
  if (!stage_times(instance, id, decision, b, opts.queueing, &st)) {
    pred.stable = false;
    pred.expected_latency = kInf;
    return pred;
  }
  pred.expected_latency =
      st.device + b.offload_prob * (st.upload + st.server);
  return pred;
}

void evaluate_decision(const ProblemInstance& instance, Decision& decision,
                       const EvalOptions& opts) {
  const auto& topo = instance.topology();
  SCALPEL_REQUIRE(decision.per_device.size() == topo.devices().size(),
                  "decision must cover every device");

  // Resource-grant feasibility.
  std::vector<double> cell_bw(topo.cells().size(), 0.0);
  std::vector<double> server_share(topo.servers().size(), 0.0);
  for (std::size_t i = 0; i < decision.per_device.size(); ++i) {
    const auto& dd = decision.per_device[i];
    if (dd.plan.device_only) continue;
    const auto& dev = topo.device(static_cast<DeviceId>(i));
    cell_bw[static_cast<std::size_t>(dev.cell)] += dd.bandwidth;
    SCALPEL_REQUIRE(dd.server >= 0 && static_cast<std::size_t>(dd.server) <
                                          topo.servers().size(),
                    "decision references missing server");
    server_share[static_cast<std::size_t>(dd.server)] += dd.compute_share;
  }
  for (std::size_t c = 0; c < cell_bw.size(); ++c) {
    SCALPEL_REQUIRE(
        cell_bw[c] <= topo.cell(static_cast<CellId>(c)).bandwidth * (1.0 + 1e-6),
        "cell bandwidth oversubscribed");
  }
  for (double s : server_share) {
    SCALPEL_REQUIRE(s <= 1.0 + 1e-6, "server compute oversubscribed");
  }

  decision.predicted.resize(decision.per_device.size());
  double weighted = 0.0;
  double total_rate = 0.0;
  bool any_unstable = false;
  for (std::size_t i = 0; i < decision.per_device.size(); ++i) {
    const auto id = static_cast<DeviceId>(i);
    decision.predicted[i] =
        evaluate_device(instance, id, decision.per_device[i], opts);
    const double rate = topo.device(id).arrival_rate;
    weighted += rate * decision.predicted[i].expected_latency;
    total_rate += rate;
    any_unstable = any_unstable || !decision.predicted[i].stable;
  }
  decision.mean_latency = any_unstable ? kInf : weighted / total_rate;
}

double predicted_deadline_satisfaction(const ProblemInstance& instance,
                                       const Decision& decision) {
  const auto& topo = instance.topology();
  SCALPEL_REQUIRE(decision.per_device.size() == topo.devices().size(),
                  "decision must cover every device");
  double weighted = 0.0;
  double total_rate = 0.0;
  constexpr int kGrid = 200;
  for (std::size_t i = 0; i < decision.per_device.size(); ++i) {
    const auto id = static_cast<DeviceId>(i);
    const auto& dev = topo.device(id);
    total_rate += dev.arrival_rate;
    if (dev.deadline <= 0.0) {
      weighted += dev.arrival_rate;  // best-effort devices always "meet"
      continue;
    }
    const auto& dd = decision.per_device[i];
    const PlanModel pm = make_plan_model(instance, id, dd);
    const auto& b = pm.breakdown();
    StageTimes st;
    if (!stage_times(instance, id, dd, b, /*queueing_on=*/true, &st)) {
      continue;  // unstable: never meets
    }
    // Mean queueing waits (beyond own service) at the first two stages; the
    // server stage's variability is modelled with an exponential tail on its
    // conditional sojourn.
    const double dev_wait = st.device - b.expected_device_time;
    const double s_up = dd.plan.device_only || b.offload_prob <= 0.0
                            ? 0.0
                            : static_cast<double>(b.upload_bytes) /
                                  dd.bandwidth;
    const double rtt = dd.plan.device_only
                           ? 0.0
                           : instance.topology().path_rtt(id, dd.server);
    const double up_wait = dd.plan.device_only
                               ? 0.0
                               : st.upload - s_up - rtt;

    double meet = 0.0;
    for (int g = 0; g < kGrid; ++g) {
      const double x = (static_cast<double>(g) + 0.5) / kGrid;
      const auto ph = pm.phases_for(x);
      if (!ph.offloaded) {
        meet += (ph.device_time + dev_wait <= dev.deadline) ? 1.0 : 0.0;
        continue;
      }
      const double slack =
          dev.deadline - ph.device_time - dev_wait - s_up - up_wait - rtt;
      if (slack <= 0.0) continue;
      if (st.server <= 0.0) {
        meet += 1.0;
        continue;
      }
      meet += 1.0 - std::exp(-slack / st.server);
    }
    weighted += dev.arrival_rate * meet / kGrid;
  }
  return weighted / total_rate;
}

}  // namespace scalpel
