#include "core/admission.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "core/objective.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace scalpel::admission {
namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

double max_sustainable_rate(const ProblemInstance& instance, DeviceId id,
                            const DeviceDecision& decision,
                            double utilization_headroom) {
  SCALPEL_REQUIRE(utilization_headroom > 0.0 && utilization_headroom <= 1.0,
                  "headroom must be in (0, 1]");
  // Every stage's utilization is linear in the arrival rate, so the
  // sustainable maximum is a closed form: h / (per-task load of the most
  // loaded stage).
  const PlanModel pm = build_plan_model(instance, id, decision);
  const auto& b = pm.breakdown();

  double per_task_load = b.expected_device_time;  // device stage, all tasks
  if (!decision.plan.device_only && b.offload_prob > 0.0) {
    const double s_up =
        static_cast<double>(b.upload_bytes) / decision.bandwidth;
    per_task_load = std::max(per_task_load, b.offload_prob * s_up);
    per_task_load = std::max(
        per_task_load,
        b.offload_prob * b.server_time_cond_m1 / decision.compute_share);
  }
  if (per_task_load <= 0.0) return kInf;
  return utilization_headroom / per_task_load;
}

ThrottlePlan propose_throttle(const ProblemInstance& instance,
                              const Decision& decision,
                              double utilization_headroom) {
  const auto& topo = instance.topology();
  SCALPEL_REQUIRE(decision.per_device.size() == topo.devices().size(),
                  "decision must cover every device");
  ThrottlePlan plan;
  plan.admitted_rate.resize(decision.per_device.size());
  double offered_total = 0.0;
  double admitted_total = 0.0;
  for (std::size_t i = 0; i < decision.per_device.size(); ++i) {
    const auto id = static_cast<DeviceId>(i);
    const double offered = topo.device(id).arrival_rate;
    const double sustainable = max_sustainable_rate(
        instance, id, decision.per_device[i], utilization_headroom);
    const double admitted = std::min(offered, sustainable);
    plan.admitted_rate[i] = admitted;
    plan.throttled = plan.throttled || admitted < offered - 1e-12;
    offered_total += offered;
    admitted_total += admitted;
  }
  plan.admitted_fraction = admitted_total / offered_total;
  return plan;
}

ThrottlePlan propose_throttle_fixed_point(const ProblemInstance& instance,
                                          const Decision& decision,
                                          double utilization_headroom,
                                          std::size_t max_iters) {
  SCALPEL_REQUIRE(max_iters > 0, "fixed point needs at least one iteration");
  ThrottlePlan plan = propose_throttle(instance, decision,
                                       utilization_headroom);
  if (!plan.throttled) return plan;

  const auto& topo = instance.topology();
  // One bundle-sharing working instance whose rates track the iterate.
  ProblemInstance work(topo);
  for (std::size_t iter = 1; iter < max_iters; ++iter) {
    for (std::size_t i = 0; i < plan.admitted_rate.size(); ++i) {
      work.mutable_topology().set_device_arrival_rate(
          static_cast<DeviceId>(i), std::max(1e-6, plan.admitted_rate[i]));
    }
    bool changed = false;
    for (std::size_t i = 0; i < plan.admitted_rate.size(); ++i) {
      const double sustainable = max_sustainable_rate(
          work, static_cast<DeviceId>(i), decision.per_device[i],
          utilization_headroom);
      const double next = std::min(plan.admitted_rate[i], sustainable);
      if (next < plan.admitted_rate[i] - 1e-12) {
        plan.admitted_rate[i] = next;
        changed = true;
      }
    }
    ++plan.iterations;
    if (!changed) break;
  }
  if (plan.iterations + 1 >= max_iters) {
    log_debug("admission fixed point hit the iteration cap (" +
              std::to_string(max_iters) + ") before converging");
  }

  // Final accounting is always relative to the *original* offered load.
  double offered_total = 0.0;
  double admitted_total = 0.0;
  plan.throttled = false;
  for (std::size_t i = 0; i < plan.admitted_rate.size(); ++i) {
    const double offered = topo.device(static_cast<DeviceId>(i)).arrival_rate;
    plan.throttled =
        plan.throttled || plan.admitted_rate[i] < offered - 1e-12;
    offered_total += offered;
    admitted_total += plan.admitted_rate[i];
  }
  plan.admitted_fraction = admitted_total / offered_total;
  if (plan.throttled) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "admission throttle converged in %zu iters, admitting "
                  "%.1f%% of offered load",
                  plan.iterations + 1, plan.admitted_fraction * 100.0);
    log_debug(buf);
  }
  return plan;
}

ClusterTopology throttled_topology(const ProblemInstance& instance,
                                   const ThrottlePlan& plan) {
  const auto& topo = instance.topology();
  SCALPEL_REQUIRE(plan.admitted_rate.size() == topo.devices().size(),
                  "throttle plan must cover every device");
  ClusterTopology out;
  for (const auto& c : topo.cells()) {
    Cell cell = c;
    cell.id = -1;
    out.add_cell(std::move(cell));
  }
  for (const auto& d : topo.devices()) {
    Device dev = d;
    dev.id = -1;
    dev.arrival_rate = std::max(
        1e-6, plan.admitted_rate[static_cast<std::size_t>(d.id)]);
    out.add_device(std::move(dev));
  }
  for (const auto& s : topo.servers()) {
    EdgeServer server = s;
    server.id = -1;
    out.add_server(std::move(server));
  }
  out.validate();
  return out;
}

}  // namespace scalpel::admission
