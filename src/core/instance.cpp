#include "core/instance.hpp"

#include "nn/models.hpp"
#include "util/assert.hpp"

namespace scalpel {

ProblemInstance::ProblemInstance(const ClusterTopology& topology)
    : topology_(topology) {
  topology_.validate();
  for (const auto& d : topology_.devices()) {
    if (bundles_.count(d.model)) continue;
    auto bundle = std::make_unique<ModelBundle>();
    bundle->graph = models::by_name(d.model);
    ExitCandidateOptions opts;
    // Detection-style outputs keep a conservative class count for heads.
    opts.num_classes =
        (d.model == "tiny_yolo") ? 20 : 1000;
    if (d.model == "lenet5" || d.model == "tiny_cnn") opts.num_classes = 10;
    bundle->candidates = find_exit_candidates(bundle->graph, opts);
    bundle->accuracy = AccuracyModel::for_model(d.model);
    bundles_.emplace(d.model, std::move(bundle));
  }
}

const ModelBundle& ProblemInstance::bundle_for(DeviceId id) const {
  return bundle_by_model(topology_.device(id).model);
}

const ModelBundle& ProblemInstance::bundle_by_model(
    const std::string& model_name) const {
  const auto it = bundles_.find(model_name);
  SCALPEL_REQUIRE(it != bundles_.end(), "no bundle for model " + model_name);
  return *it->second;
}

}  // namespace scalpel
