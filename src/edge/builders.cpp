#include "edge/builders.hpp"

#include <algorithm>

#include "surgery/accuracy_model.hpp"

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace scalpel::clusters {
namespace {

Device make_device(const std::string& name, const ComputeProfile& compute,
                   const EnergyProfile& energy, CellId cell,
                   const std::string& model, double rate, double deadline,
                   double min_accuracy) {
  Device d;
  d.name = name;
  d.compute = compute;
  d.energy = energy;
  d.cell = cell;
  d.model = model;
  d.arrival_rate = rate;
  d.deadline = deadline;
  d.min_accuracy = min_accuracy;
  return d;
}

}  // namespace

ClusterTopology small_lab() {
  ClusterTopology t;
  const CellId cell = t.add_cell(Cell{-1, "lab_wifi", mbps(80.0), ms(2.0)});

  t.add_device(make_device("cam0", profiles::iot_camera(),
                           profiles::energy_iot(), cell, "mobilenet_v1", 2.0,
                           0.20, 0.60));
  t.add_device(make_device("pi0", profiles::raspberry_pi4(),
                           profiles::energy_iot(), cell, "resnet18", 1.5, 0.30,
                           0.62));
  t.add_device(make_device("phone0", profiles::smartphone(),
                           profiles::energy_phone(), cell, "vgg16", 1.0, 0.50,
                           0.65));
  t.add_device(make_device("jetson0", profiles::jetson_nano(),
                           profiles::energy_jetson(), cell, "tiny_yolo", 4.0,
                           0.15, 0.50));

  EdgeServer cpu;
  cpu.name = "edge-cpu-0";
  cpu.compute = profiles::edge_cpu();
  cpu.backhaul_rtt = ms(0.5);
  t.add_server(cpu);

  EdgeServer gpu;
  gpu.name = "edge-t4-0";
  gpu.compute = profiles::edge_gpu_t4();
  gpu.backhaul_rtt = ms(1.0);
  t.add_server(gpu);

  t.validate();
  return t;
}

ClusterTopology campus(const CampusOptions& opts) {
  SCALPEL_REQUIRE(opts.num_devices > 0 && opts.num_servers > 0,
                  "campus needs devices and servers");
  SCALPEL_REQUIRE(opts.devices_per_cell > 0, "devices_per_cell must be > 0");
  Rng rng(opts.seed);
  ClusterTopology t;

  const std::size_t num_cells =
      (opts.num_devices + opts.devices_per_cell - 1) / opts.devices_per_cell;
  for (std::size_t c = 0; c < num_cells; ++c) {
    Cell cell;
    cell.name = "cell" + std::to_string(c);
    // Mild bandwidth diversity across cells.
    cell.bandwidth = mbps(opts.cell_bandwidth_mbps *
                          rng.lognormal_mean_cov(1.0, 0.15));
    cell.rtt = opts.cell_rtt;
    t.add_cell(cell);
  }

  const std::vector<ComputeProfile> device_classes = {
      profiles::iot_camera(), profiles::raspberry_pi4(),
      profiles::smartphone(), profiles::jetson_nano()};
  const std::vector<EnergyProfile> energy_classes = {
      profiles::energy_iot(), profiles::energy_iot(),
      profiles::energy_phone(), profiles::energy_jetson()};
  // Latency-sensitive inference workloads typical of the motivating apps.
  const std::vector<std::string> workloads = {"mobilenet_v1", "resnet18",
                                              "alexnet", "vgg16", "tiny_yolo"};

  for (std::size_t i = 0; i < opts.num_devices; ++i) {
    const auto cls = rng.categorical({0.35, 0.25, 0.25, 0.15});
    const auto wl = rng.categorical({0.30, 0.25, 0.15, 0.15, 0.15});
    const auto cell = static_cast<CellId>(i / opts.devices_per_cell);
    const double rate =
        opts.mean_arrival_rate * rng.lognormal_mean_cov(1.0, 0.3);
    // Clamp the accuracy floor to what the workload's model can actually
    // deliver (tiny_yolo's mAP-style ceiling sits below typical classifier
    // floors); a floor above a_max would be inherently infeasible.
    const double ceiling =
        AccuracyModel::for_model(workloads[wl]).a_max * 0.95;
    const double floor = std::min(opts.min_accuracy, ceiling);
    t.add_device(make_device(
        "dev" + std::to_string(i), device_classes[cls], energy_classes[cls],
        cell, workloads[wl], rate, opts.deadline, floor));
  }

  for (std::size_t s = 0; s < opts.num_servers; ++s) {
    EdgeServer server;
    server.name = "edge" + std::to_string(s);
    server.compute = profiles::edge_gpu_t4();
    server.compute.name += "#" + std::to_string(s);
    server.compute.peak_flops *=
        rng.lognormal_mean_cov(1.0, opts.server_speed_cov);
    server.compute.mem_bw *= rng.lognormal_mean_cov(1.0, opts.server_speed_cov);
    server.backhaul_rtt = ms(rng.uniform(0.3, 1.5));
    t.add_server(server);
  }

  t.validate();
  return t;
}

}  // namespace scalpel::clusters
