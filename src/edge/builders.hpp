#pragma once

#include <cstdint>

#include "edge/cluster.hpp"

namespace scalpel {
class Rng;

/// Deterministic cluster generators used across examples, tests and benches.
namespace clusters {

/// 4 devices (one per device class), 2 servers (CPU + T4), one 80 Mbps cell.
/// The quickstart topology.
ClusterTopology small_lab();

struct CampusOptions {
  std::size_t num_devices = 24;
  std::size_t num_servers = 4;
  /// Devices per cell (cells created as needed).
  std::size_t devices_per_cell = 8;
  double cell_bandwidth_mbps = 120.0;
  double cell_rtt = 2e-3;
  /// Coefficient of variation applied to server speeds (heterogeneity knob
  /// for the sensitivity bench); 0 = homogeneous T4-class servers.
  double server_speed_cov = 0.5;
  double mean_arrival_rate = 2.0;  // tasks/s per device
  double deadline = 0.25;          // seconds; 0 = best effort
  double min_accuracy = 0.60;
  std::uint64_t seed = 42;
};

/// Randomized heterogeneous deployment: device classes and models drawn from
/// the catalog, servers log-normal around a T4, multiple cells.
ClusterTopology campus(const CampusOptions& opts);

}  // namespace clusters
}  // namespace scalpel
