#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "util/rng.hpp"

namespace scalpel {

/// Piecewise-constant time series of a cell's uplink bandwidth, used by the
/// online-adaptation experiment (trace-driven bandwidth dynamics standing in
/// for real wireless variability).
class BandwidthTrace {
 public:
  struct Segment {
    double start = 0.0;      // seconds
    double bandwidth = 0.0;  // bytes/s
  };

  explicit BandwidthTrace(std::vector<Segment> segments);

  /// Bandwidth active at time t (segments cover [0, inf); the last segment
  /// extends forever). t must be >= the first segment start.
  double at(double t) const;

  const std::vector<Segment>& segments() const { return segments_; }
  double mean(double horizon) const;

  /// Flat trace.
  static BandwidthTrace constant(double bandwidth);

  /// Bounded multiplicative random walk around `base`: every `step` seconds
  /// the bandwidth multiplies by exp(N(0, sigma)), clamped to
  /// [base/range, base*range].
  static BandwidthTrace random_walk(double base, double step, double sigma,
                                    double range, double horizon, Rng& rng);

  /// Two-state Markov-modulated trace (good/bad bandwidth), exponential
  /// holding times — models interference bursts / contention episodes.
  static BandwidthTrace gilbert(double good_bw, double bad_bw,
                                double mean_good_s, double mean_bad_s,
                                double horizon, Rng& rng);

 private:
  std::vector<Segment> segments_;
};

/// What a fault event hits.
enum class FaultTarget { Server, Link };

/// One liveness transition: a server crashing/recovering or a cell uplink
/// dropping/restoring. Everything starts up at t = 0; redundant transitions
/// (downing an already-down target) are no-ops, so generated schedules can
/// be merged freely.
struct FaultEvent {
  double time = 0.0;
  FaultTarget target = FaultTarget::Server;
  std::int32_t id = -1;  // ServerId or CellId depending on target
  bool up = false;       // false = crash/outage, true = recover/restore
};

/// A deterministic script of hard failures driving the simulator's fault
/// injection (BandwidthTrace models smooth drift; this models resources
/// disappearing outright). Events are kept sorted by time, ties in insertion
/// order, so replaying a schedule is deterministic.
class FaultSchedule {
 public:
  FaultSchedule() = default;
  explicit FaultSchedule(std::vector<FaultEvent> events);

  bool empty() const { return events_.empty(); }
  const std::vector<FaultEvent>& events() const { return events_; }

  /// Liveness at time t (events at exactly t already applied).
  bool server_up(std::int32_t server, double t) const;
  bool link_up(std::int32_t cell, double t) const;

  /// Fraction of [0, horizon] the target is up.
  double server_availability(std::int32_t server, double horizon) const;
  double link_availability(std::int32_t cell, double horizon) const;

  /// Union of two scripts (events re-sorted by time).
  FaultSchedule merged(const FaultSchedule& other) const;

  /// One crash/recover cycle. up_at = +inf means the server never recovers.
  static FaultSchedule server_crash(std::int32_t server, double down_at,
                                    double up_at);
  static FaultSchedule link_outage(std::int32_t cell, double down_at,
                                   double up_at);

  /// Independent alternating up/down renewal process per server: exponential
  /// time-to-failure (mean `mtbf`) and repair time (mean `mttr`). Server s is
  /// driven by rng.substream(s), so the script depends only on the rng's
  /// construction seed, never on draw history.
  static FaultSchedule exponential_servers(std::size_t num_servers,
                                           double mtbf, double mttr,
                                           double horizon, const Rng& rng);

 private:
  double availability(FaultTarget target, std::int32_t id,
                      double horizon) const;
  bool up_at(FaultTarget target, std::int32_t id, double t) const;

  std::vector<FaultEvent> events_;
};

/// Impairments the telemetry channel applies between the ground truth and
/// what the controller observes. All-zero (the default) means a perfect
/// channel; `Simulator` skips channel construction entirely in that case so
/// existing runs stay bit-identical.
struct TelemetryChannelOptions {
  /// Observation latency: a sample taken at t is deliverable at t + delay.
  double delay = 0.0;  // seconds
  /// Per signal per tick probability that the report is lost; a lost report
  /// repeats the last delivered value (marked not fresh, with growing age).
  double drop_prob = 0.0;
  /// Multiplicative lognormal measurement noise on bandwidth readings:
  /// observed = delivered * exp(N(0, sigma)).
  double noise_sigma = 0.0;
  /// Bandwidth readings snap to this grid (bytes/s); 0 disables. Readings
  /// below quantum/2 clamp to one quantum, never to zero.
  double quantum = 0.0;  // bytes/s
  /// Per server per tick probability a liveness reading is inverted (the
  /// "blinking server" input the sanitizer's flap filter exists for).
  double flip_prob = 0.0;

  /// True when every impairment is disabled (identity channel).
  bool pass_through() const {
    return delay == 0.0 && drop_prob == 0.0 && noise_sigma == 0.0 &&
           quantum == 0.0 && flip_prob == 0.0;
  }
};

/// Models the measurement path between the cluster and the controller:
/// delays, drops, quantizes, and perturbs per-cell bandwidth and per-server
/// liveness readings. Every signal draws from its own Rng substream derived
/// from the construction seed (cells first, then servers), and every
/// sample() consumes a fixed number of draws per signal, so the observed
/// stream is a pure function of (options, seed, tick times) — independent of
/// thread count or of what any other signal did. Feed it the ground truth in
/// simulation-time order; it mutates the vectors toward what a real
/// collector would have seen.
class TelemetryChannel {
 public:
  TelemetryChannel(TelemetryChannelOptions opts,
                   std::vector<double> initial_bandwidth,
                   std::size_t num_servers, std::uint64_t seed);

  /// Observes the ground truth at `now` (must not decrease across calls).
  /// `cell_bandwidth` / `server_alive` are replaced in place by the channel's
  /// readings. `bw_fresh[c]` is false when cell c's report was dropped this
  /// tick; `bw_age[c]` is now minus the timestamp of the sample actually
  /// delivered (delay + drops both age a reading). `alive_fresh[s]` is false
  /// when server s's report was dropped (a flipped reading is "fresh" —
  /// detecting the lie is the sanitizer's job, not the channel's).
  void sample(double now, std::vector<double>& cell_bandwidth,
              std::vector<bool>& server_alive, std::vector<bool>& bw_fresh,
              std::vector<double>& bw_age, std::vector<bool>& alive_fresh);

  bool pass_through() const { return opts_.pass_through(); }
  const TelemetryChannelOptions& options() const { return opts_; }

 private:
  struct Sample {
    double time = 0.0;
    double value = 0.0;
  };
  /// Newest history entry with time <= now - delay (history is seeded at
  /// construction, so one always exists).
  static const Sample& delayed(const std::deque<Sample>& history, double now,
                               double delay);
  static void prune(std::deque<Sample>& history, double now, double delay);

  TelemetryChannelOptions opts_;
  std::vector<Rng> cell_rng_;    // one substream per cell
  std::vector<Rng> server_rng_;  // one substream per server
  std::vector<std::deque<Sample>> bw_history_;     // per cell, ground truth
  std::vector<std::deque<Sample>> alive_history_;  // per server, 0/1 truth
  std::vector<Sample> bw_delivered_;     // last report that got through
  std::vector<Sample> alive_delivered_;  // value is 0.0/1.0
};

}  // namespace scalpel
