#pragma once

#include <cstdint>
#include <vector>

namespace scalpel {
class Rng;

/// Piecewise-constant time series of a cell's uplink bandwidth, used by the
/// online-adaptation experiment (trace-driven bandwidth dynamics standing in
/// for real wireless variability).
class BandwidthTrace {
 public:
  struct Segment {
    double start = 0.0;      // seconds
    double bandwidth = 0.0;  // bytes/s
  };

  explicit BandwidthTrace(std::vector<Segment> segments);

  /// Bandwidth active at time t (segments cover [0, inf); the last segment
  /// extends forever). t must be >= the first segment start.
  double at(double t) const;

  const std::vector<Segment>& segments() const { return segments_; }
  double mean(double horizon) const;

  /// Flat trace.
  static BandwidthTrace constant(double bandwidth);

  /// Bounded multiplicative random walk around `base`: every `step` seconds
  /// the bandwidth multiplies by exp(N(0, sigma)), clamped to
  /// [base/range, base*range].
  static BandwidthTrace random_walk(double base, double step, double sigma,
                                    double range, double horizon, Rng& rng);

  /// Two-state Markov-modulated trace (good/bad bandwidth), exponential
  /// holding times — models interference bursts / contention episodes.
  static BandwidthTrace gilbert(double good_bw, double bad_bw,
                                double mean_good_s, double mean_bad_s,
                                double horizon, Rng& rng);

 private:
  std::vector<Segment> segments_;
};

}  // namespace scalpel
