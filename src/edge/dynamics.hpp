#pragma once

#include <cstdint>
#include <vector>

namespace scalpel {
class Rng;

/// Piecewise-constant time series of a cell's uplink bandwidth, used by the
/// online-adaptation experiment (trace-driven bandwidth dynamics standing in
/// for real wireless variability).
class BandwidthTrace {
 public:
  struct Segment {
    double start = 0.0;      // seconds
    double bandwidth = 0.0;  // bytes/s
  };

  explicit BandwidthTrace(std::vector<Segment> segments);

  /// Bandwidth active at time t (segments cover [0, inf); the last segment
  /// extends forever). t must be >= the first segment start.
  double at(double t) const;

  const std::vector<Segment>& segments() const { return segments_; }
  double mean(double horizon) const;

  /// Flat trace.
  static BandwidthTrace constant(double bandwidth);

  /// Bounded multiplicative random walk around `base`: every `step` seconds
  /// the bandwidth multiplies by exp(N(0, sigma)), clamped to
  /// [base/range, base*range].
  static BandwidthTrace random_walk(double base, double step, double sigma,
                                    double range, double horizon, Rng& rng);

  /// Two-state Markov-modulated trace (good/bad bandwidth), exponential
  /// holding times — models interference bursts / contention episodes.
  static BandwidthTrace gilbert(double good_bw, double bad_bw,
                                double mean_good_s, double mean_bad_s,
                                double horizon, Rng& rng);

 private:
  std::vector<Segment> segments_;
};

/// What a fault event hits.
enum class FaultTarget { Server, Link };

/// One liveness transition: a server crashing/recovering or a cell uplink
/// dropping/restoring. Everything starts up at t = 0; redundant transitions
/// (downing an already-down target) are no-ops, so generated schedules can
/// be merged freely.
struct FaultEvent {
  double time = 0.0;
  FaultTarget target = FaultTarget::Server;
  std::int32_t id = -1;  // ServerId or CellId depending on target
  bool up = false;       // false = crash/outage, true = recover/restore
};

/// A deterministic script of hard failures driving the simulator's fault
/// injection (BandwidthTrace models smooth drift; this models resources
/// disappearing outright). Events are kept sorted by time, ties in insertion
/// order, so replaying a schedule is deterministic.
class FaultSchedule {
 public:
  FaultSchedule() = default;
  explicit FaultSchedule(std::vector<FaultEvent> events);

  bool empty() const { return events_.empty(); }
  const std::vector<FaultEvent>& events() const { return events_; }

  /// Liveness at time t (events at exactly t already applied).
  bool server_up(std::int32_t server, double t) const;
  bool link_up(std::int32_t cell, double t) const;

  /// Fraction of [0, horizon] the target is up.
  double server_availability(std::int32_t server, double horizon) const;
  double link_availability(std::int32_t cell, double horizon) const;

  /// Union of two scripts (events re-sorted by time).
  FaultSchedule merged(const FaultSchedule& other) const;

  /// One crash/recover cycle. up_at = +inf means the server never recovers.
  static FaultSchedule server_crash(std::int32_t server, double down_at,
                                    double up_at);
  static FaultSchedule link_outage(std::int32_t cell, double down_at,
                                   double up_at);

  /// Independent alternating up/down renewal process per server: exponential
  /// time-to-failure (mean `mtbf`) and repair time (mean `mttr`). Server s is
  /// driven by rng.substream(s), so the script depends only on the rng's
  /// construction seed, never on draw history.
  static FaultSchedule exponential_servers(std::size_t num_servers,
                                           double mtbf, double mttr,
                                           double horizon, const Rng& rng);

 private:
  double availability(FaultTarget target, std::int32_t id,
                      double horizon) const;
  bool up_at(FaultTarget target, std::int32_t id, double t) const;

  std::vector<FaultEvent> events_;
};

}  // namespace scalpel
