#include "edge/cluster.hpp"

#include "util/assert.hpp"

namespace scalpel {

DeviceId ClusterTopology::add_device(Device d) {
  d.id = static_cast<DeviceId>(devices_.size());
  devices_.push_back(std::move(d));
  return devices_.back().id;
}

ServerId ClusterTopology::add_server(EdgeServer s) {
  s.id = static_cast<ServerId>(servers_.size());
  servers_.push_back(std::move(s));
  return servers_.back().id;
}

CellId ClusterTopology::add_cell(Cell c) {
  c.id = static_cast<CellId>(cells_.size());
  cells_.push_back(std::move(c));
  return cells_.back().id;
}

const Device& ClusterTopology::device(DeviceId id) const {
  SCALPEL_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < devices_.size(),
                  "device id out of range");
  return devices_[static_cast<std::size_t>(id)];
}

const EdgeServer& ClusterTopology::server(ServerId id) const {
  SCALPEL_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < servers_.size(),
                  "server id out of range");
  return servers_[static_cast<std::size_t>(id)];
}

const Cell& ClusterTopology::cell(CellId id) const {
  SCALPEL_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < cells_.size(),
                  "cell id out of range");
  return cells_[static_cast<std::size_t>(id)];
}

std::vector<DeviceId> ClusterTopology::devices_in_cell(CellId id) const {
  std::vector<DeviceId> out;
  for (const auto& d : devices_) {
    if (d.cell == id) out.push_back(d.id);
  }
  return out;
}

void ClusterTopology::set_cell_bandwidth(CellId id, double bandwidth) {
  SCALPEL_REQUIRE(bandwidth > 0.0, "cell bandwidth must be positive");
  SCALPEL_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < cells_.size(),
                  "cell id out of range");
  cells_[static_cast<std::size_t>(id)].bandwidth = bandwidth;
}

void ClusterTopology::set_device_arrival_rate(DeviceId id, double rate) {
  SCALPEL_REQUIRE(rate > 0.0, "arrival rate must be positive");
  SCALPEL_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < devices_.size(),
                  "device id out of range");
  devices_[static_cast<std::size_t>(id)].arrival_rate = rate;
}

double ClusterTopology::path_rtt(DeviceId d, ServerId s) const {
  return cell(device(d).cell).rtt + server(s).backhaul_rtt;
}

void ClusterTopology::validate() const {
  SCALPEL_REQUIRE(!devices_.empty(), "cluster has no devices");
  SCALPEL_REQUIRE(!servers_.empty(), "cluster has no servers");
  SCALPEL_REQUIRE(!cells_.empty(), "cluster has no cells");
  for (const auto& c : cells_) {
    SCALPEL_REQUIRE(c.bandwidth > 0.0, "cell bandwidth must be positive");
    SCALPEL_REQUIRE(c.rtt >= 0.0, "cell rtt must be non-negative");
  }
  for (const auto& d : devices_) {
    SCALPEL_REQUIRE(d.cell >= 0 &&
                        static_cast<std::size_t>(d.cell) < cells_.size(),
                    "device references missing cell");
    SCALPEL_REQUIRE(d.compute.peak_flops > 0.0,
                    "device compute must be positive");
    SCALPEL_REQUIRE(d.arrival_rate > 0.0, "arrival rate must be positive");
    SCALPEL_REQUIRE(!d.model.empty(), "device must name its model");
  }
  for (const auto& s : servers_) {
    SCALPEL_REQUIRE(s.compute.peak_flops > 0.0,
                    "server compute must be positive");
    SCALPEL_REQUIRE(s.backhaul_rtt >= 0.0,
                    "server backhaul rtt must be non-negative");
  }
}

}  // namespace scalpel
