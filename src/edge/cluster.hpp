#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "profile/compute_profile.hpp"
#include "profile/energy_model.hpp"
#include "surgery/difficulty.hpp"

namespace scalpel {

using DeviceId = std::int32_t;
using ServerId = std::int32_t;
using CellId = std::int32_t;

/// A wireless cell: devices inside it share one uplink of `bandwidth`
/// bytes/s; every transfer also pays the cell's access latency.
struct Cell {
  CellId id = -1;
  std::string name;
  double bandwidth = 0.0;  // bytes/s, shared across the cell's devices
  double rtt = 0.0;        // one-way access latency (seconds)
};

/// An end device running one DNN workload.
struct Device {
  DeviceId id = -1;
  std::string name;
  ComputeProfile compute;
  EnergyProfile energy;
  CellId cell = -1;
  std::string model;        // model-zoo name of the DNN this device runs
  double arrival_rate = 1.0;  // tasks/s (Poisson)
  double deadline = 0.0;      // per-task latency target; 0 = best effort
  double min_accuracy = 0.0;  // accuracy floor for this workload
  /// Input-difficulty distribution of this device's task stream.
  DifficultyModel difficulty;
};

/// A heterogeneous edge server. `backhaul_rtt` is added to any transfer from
/// a cell to this server (it may sit deeper in the aggregation network).
struct EdgeServer {
  ServerId id = -1;
  std::string name;
  ComputeProfile compute;
  double backhaul_rtt = 0.0;
};

/// The full edge deployment the optimizer allocates over.
class ClusterTopology {
 public:
  DeviceId add_device(Device d);
  ServerId add_server(EdgeServer s);
  CellId add_cell(Cell c);

  const std::vector<Device>& devices() const { return devices_; }
  const std::vector<EdgeServer>& servers() const { return servers_; }
  const std::vector<Cell>& cells() const { return cells_; }

  const Device& device(DeviceId id) const;
  const EdgeServer& server(ServerId id) const;
  const Cell& cell(CellId id) const;

  /// Devices attached to a cell.
  std::vector<DeviceId> devices_in_cell(CellId id) const;

  /// Adjusts a cell's uplink capacity (online adaptation feeds observed
  /// bandwidths back into the optimization problem).
  void set_cell_bandwidth(CellId id, double bandwidth);

  /// Adjusts a device's offered rate (admission control iterates on the
  /// throttled system; load sweeps scale whole topologies).
  void set_device_arrival_rate(DeviceId id, double rate);

  /// One-way latency overhead for device -> server transfers.
  double path_rtt(DeviceId d, ServerId s) const;

  /// Validates referential integrity (cells exist, rates positive...).
  void validate() const;

 private:
  std::vector<Device> devices_;
  std::vector<EdgeServer> servers_;
  std::vector<Cell> cells_;
};

}  // namespace scalpel
