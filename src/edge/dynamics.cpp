#include "edge/dynamics.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace scalpel {

BandwidthTrace::BandwidthTrace(std::vector<Segment> segments)
    : segments_(std::move(segments)) {
  SCALPEL_REQUIRE(!segments_.empty(), "trace needs at least one segment");
  double prev = segments_.front().start;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    SCALPEL_REQUIRE(segments_[i].bandwidth > 0.0,
                    "trace bandwidth must be positive");
    SCALPEL_REQUIRE(i == 0 || segments_[i].start > prev,
                    "trace segments must be strictly increasing in time");
    prev = segments_[i].start;
  }
}

double BandwidthTrace::at(double t) const {
  SCALPEL_REQUIRE(t >= segments_.front().start,
                  "time precedes the trace start");
  // Last segment whose start <= t.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](double value, const Segment& s) { return value < s.start; });
  return std::prev(it)->bandwidth;
}

double BandwidthTrace::mean(double horizon) const {
  SCALPEL_REQUIRE(horizon > segments_.front().start,
                  "horizon must exceed the trace start");
  double acc = 0.0;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const double s = segments_[i].start;
    if (s >= horizon) break;
    const double e =
        (i + 1 < segments_.size()) ? std::min(horizon, segments_[i + 1].start)
                                   : horizon;
    acc += segments_[i].bandwidth * (e - s);
  }
  return acc / (horizon - segments_.front().start);
}

BandwidthTrace BandwidthTrace::constant(double bandwidth) {
  return BandwidthTrace({Segment{0.0, bandwidth}});
}

BandwidthTrace BandwidthTrace::random_walk(double base, double step,
                                           double sigma, double range,
                                           double horizon, Rng& rng) {
  SCALPEL_REQUIRE(base > 0.0 && step > 0.0 && range >= 1.0,
                  "invalid random walk parameters");
  std::vector<Segment> segs;
  double bw = base;
  for (double t = 0.0; t < horizon; t += step) {
    segs.push_back(Segment{t, bw});
    bw *= std::exp(rng.normal(0.0, sigma));
    bw = std::clamp(bw, base / range, base * range);
  }
  return BandwidthTrace(std::move(segs));
}

FaultSchedule::FaultSchedule(std::vector<FaultEvent> events)
    : events_(std::move(events)) {
  for (const auto& ev : events_) {
    SCALPEL_REQUIRE(std::isfinite(ev.time) && ev.time >= 0.0,
                    "fault event time must be finite and non-negative");
    SCALPEL_REQUIRE(ev.id >= 0, "fault event target id must be non-negative");
  }
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time < b.time;
                   });
}

bool FaultSchedule::up_at(FaultTarget target, std::int32_t id,
                          double t) const {
  bool up = true;
  for (const auto& ev : events_) {
    if (ev.time > t) break;
    if (ev.target == target && ev.id == id) up = ev.up;
  }
  return up;
}

bool FaultSchedule::server_up(std::int32_t server, double t) const {
  return up_at(FaultTarget::Server, server, t);
}

bool FaultSchedule::link_up(std::int32_t cell, double t) const {
  return up_at(FaultTarget::Link, cell, t);
}

double FaultSchedule::availability(FaultTarget target, std::int32_t id,
                                   double horizon) const {
  SCALPEL_REQUIRE(horizon > 0.0, "availability horizon must be positive");
  bool up = true;
  double up_time = 0.0;
  double last = 0.0;
  for (const auto& ev : events_) {
    if (ev.target != target || ev.id != id) continue;
    const double t = std::min(ev.time, horizon);
    if (up) up_time += t - last;
    last = t;
    up = ev.up;
    if (ev.time >= horizon) break;
  }
  if (up) up_time += horizon - last;
  return up_time / horizon;
}

double FaultSchedule::server_availability(std::int32_t server,
                                          double horizon) const {
  return availability(FaultTarget::Server, server, horizon);
}

double FaultSchedule::link_availability(std::int32_t cell,
                                        double horizon) const {
  return availability(FaultTarget::Link, cell, horizon);
}

FaultSchedule FaultSchedule::merged(const FaultSchedule& other) const {
  std::vector<FaultEvent> all = events_;
  all.insert(all.end(), other.events_.begin(), other.events_.end());
  return FaultSchedule(std::move(all));
}

FaultSchedule FaultSchedule::server_crash(std::int32_t server, double down_at,
                                          double up_at) {
  SCALPEL_REQUIRE(up_at >= down_at, "recovery cannot precede the crash");
  std::vector<FaultEvent> evs{{down_at, FaultTarget::Server, server, false}};
  if (std::isfinite(up_at)) {
    evs.push_back({up_at, FaultTarget::Server, server, true});
  }
  return FaultSchedule(std::move(evs));
}

FaultSchedule FaultSchedule::link_outage(std::int32_t cell, double down_at,
                                         double up_at) {
  SCALPEL_REQUIRE(up_at >= down_at, "restore cannot precede the outage");
  std::vector<FaultEvent> evs{{down_at, FaultTarget::Link, cell, false}};
  if (std::isfinite(up_at)) {
    evs.push_back({up_at, FaultTarget::Link, cell, true});
  }
  return FaultSchedule(std::move(evs));
}

FaultSchedule FaultSchedule::exponential_servers(std::size_t num_servers,
                                                 double mtbf, double mttr,
                                                 double horizon,
                                                 const Rng& rng) {
  SCALPEL_REQUIRE(mtbf > 0.0 && mttr > 0.0, "MTBF and MTTR must be positive");
  SCALPEL_REQUIRE(horizon > 0.0, "horizon must be positive");
  std::vector<FaultEvent> evs;
  for (std::size_t s = 0; s < num_servers; ++s) {
    Rng r = rng.substream(static_cast<std::uint64_t>(s));
    const auto id = static_cast<std::int32_t>(s);
    double t = 0.0;
    while (true) {
      t += r.exponential(1.0 / mtbf);
      if (t >= horizon) break;
      evs.push_back({t, FaultTarget::Server, id, false});
      t += r.exponential(1.0 / mttr);
      if (t >= horizon) break;  // stays down past the horizon
      evs.push_back({t, FaultTarget::Server, id, true});
    }
  }
  return FaultSchedule(std::move(evs));
}

BandwidthTrace BandwidthTrace::gilbert(double good_bw, double bad_bw,
                                       double mean_good_s, double mean_bad_s,
                                       double horizon, Rng& rng) {
  SCALPEL_REQUIRE(good_bw > 0.0 && bad_bw > 0.0, "bandwidths must be positive");
  SCALPEL_REQUIRE(mean_good_s > 0.0 && mean_bad_s > 0.0,
                  "holding times must be positive");
  std::vector<Segment> segs;
  bool good = true;
  double t = 0.0;
  while (t < horizon) {
    segs.push_back(Segment{t, good ? good_bw : bad_bw});
    t += rng.exponential(1.0 / (good ? mean_good_s : mean_bad_s));
    good = !good;
  }
  return BandwidthTrace(std::move(segs));
}

}  // namespace scalpel
