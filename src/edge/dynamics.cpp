#include "edge/dynamics.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace scalpel {

BandwidthTrace::BandwidthTrace(std::vector<Segment> segments)
    : segments_(std::move(segments)) {
  SCALPEL_REQUIRE(!segments_.empty(), "trace needs at least one segment");
  double prev = segments_.front().start;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    SCALPEL_REQUIRE(segments_[i].bandwidth > 0.0,
                    "trace bandwidth must be positive");
    SCALPEL_REQUIRE(i == 0 || segments_[i].start > prev,
                    "trace segments must be strictly increasing in time");
    prev = segments_[i].start;
  }
}

double BandwidthTrace::at(double t) const {
  SCALPEL_REQUIRE(t >= segments_.front().start,
                  "time precedes the trace start");
  // Last segment whose start <= t.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](double value, const Segment& s) { return value < s.start; });
  return std::prev(it)->bandwidth;
}

double BandwidthTrace::mean(double horizon) const {
  SCALPEL_REQUIRE(horizon > segments_.front().start,
                  "horizon must exceed the trace start");
  double acc = 0.0;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const double s = segments_[i].start;
    if (s >= horizon) break;
    const double e =
        (i + 1 < segments_.size()) ? std::min(horizon, segments_[i + 1].start)
                                   : horizon;
    acc += segments_[i].bandwidth * (e - s);
  }
  return acc / (horizon - segments_.front().start);
}

BandwidthTrace BandwidthTrace::constant(double bandwidth) {
  return BandwidthTrace({Segment{0.0, bandwidth}});
}

BandwidthTrace BandwidthTrace::random_walk(double base, double step,
                                           double sigma, double range,
                                           double horizon, Rng& rng) {
  SCALPEL_REQUIRE(base > 0.0 && step > 0.0 && range >= 1.0,
                  "invalid random walk parameters");
  std::vector<Segment> segs;
  double bw = base;
  for (double t = 0.0; t < horizon; t += step) {
    segs.push_back(Segment{t, bw});
    bw *= std::exp(rng.normal(0.0, sigma));
    bw = std::clamp(bw, base / range, base * range);
  }
  return BandwidthTrace(std::move(segs));
}

BandwidthTrace BandwidthTrace::gilbert(double good_bw, double bad_bw,
                                       double mean_good_s, double mean_bad_s,
                                       double horizon, Rng& rng) {
  SCALPEL_REQUIRE(good_bw > 0.0 && bad_bw > 0.0, "bandwidths must be positive");
  SCALPEL_REQUIRE(mean_good_s > 0.0 && mean_bad_s > 0.0,
                  "holding times must be positive");
  std::vector<Segment> segs;
  bool good = true;
  double t = 0.0;
  while (t < horizon) {
    segs.push_back(Segment{t, good ? good_bw : bad_bw});
    t += rng.exponential(1.0 / (good ? mean_good_s : mean_bad_s));
    good = !good;
  }
  return BandwidthTrace(std::move(segs));
}

}  // namespace scalpel
