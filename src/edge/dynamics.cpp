#include "edge/dynamics.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace scalpel {

BandwidthTrace::BandwidthTrace(std::vector<Segment> segments)
    : segments_(std::move(segments)) {
  SCALPEL_REQUIRE(!segments_.empty(), "trace needs at least one segment");
  double prev = segments_.front().start;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    SCALPEL_REQUIRE(segments_[i].bandwidth > 0.0,
                    "trace bandwidth must be positive");
    SCALPEL_REQUIRE(i == 0 || segments_[i].start > prev,
                    "trace segments must be strictly increasing in time");
    prev = segments_[i].start;
  }
}

double BandwidthTrace::at(double t) const {
  SCALPEL_REQUIRE(t >= segments_.front().start,
                  "time precedes the trace start");
  // Last segment whose start <= t.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](double value, const Segment& s) { return value < s.start; });
  return std::prev(it)->bandwidth;
}

double BandwidthTrace::mean(double horizon) const {
  SCALPEL_REQUIRE(horizon > segments_.front().start,
                  "horizon must exceed the trace start");
  double acc = 0.0;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const double s = segments_[i].start;
    if (s >= horizon) break;
    const double e =
        (i + 1 < segments_.size()) ? std::min(horizon, segments_[i + 1].start)
                                   : horizon;
    acc += segments_[i].bandwidth * (e - s);
  }
  return acc / (horizon - segments_.front().start);
}

BandwidthTrace BandwidthTrace::constant(double bandwidth) {
  return BandwidthTrace({Segment{0.0, bandwidth}});
}

BandwidthTrace BandwidthTrace::random_walk(double base, double step,
                                           double sigma, double range,
                                           double horizon, Rng& rng) {
  SCALPEL_REQUIRE(base > 0.0 && step > 0.0 && range >= 1.0,
                  "invalid random walk parameters");
  std::vector<Segment> segs;
  double bw = base;
  for (double t = 0.0; t < horizon; t += step) {
    segs.push_back(Segment{t, bw});
    bw *= std::exp(rng.normal(0.0, sigma));
    bw = std::clamp(bw, base / range, base * range);
  }
  return BandwidthTrace(std::move(segs));
}

FaultSchedule::FaultSchedule(std::vector<FaultEvent> events)
    : events_(std::move(events)) {
  for (const auto& ev : events_) {
    SCALPEL_REQUIRE(std::isfinite(ev.time) && ev.time >= 0.0,
                    "fault event time must be finite and non-negative");
    SCALPEL_REQUIRE(ev.id >= 0, "fault event target id must be non-negative");
  }
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time < b.time;
                   });
}

bool FaultSchedule::up_at(FaultTarget target, std::int32_t id,
                          double t) const {
  bool up = true;
  for (const auto& ev : events_) {
    if (ev.time > t) break;
    if (ev.target == target && ev.id == id) up = ev.up;
  }
  return up;
}

bool FaultSchedule::server_up(std::int32_t server, double t) const {
  return up_at(FaultTarget::Server, server, t);
}

bool FaultSchedule::link_up(std::int32_t cell, double t) const {
  return up_at(FaultTarget::Link, cell, t);
}

double FaultSchedule::availability(FaultTarget target, std::int32_t id,
                                   double horizon) const {
  SCALPEL_REQUIRE(horizon > 0.0, "availability horizon must be positive");
  bool up = true;
  double up_time = 0.0;
  double last = 0.0;
  for (const auto& ev : events_) {
    if (ev.target != target || ev.id != id) continue;
    const double t = std::min(ev.time, horizon);
    if (up) up_time += t - last;
    last = t;
    up = ev.up;
    if (ev.time >= horizon) break;
  }
  if (up) up_time += horizon - last;
  return up_time / horizon;
}

double FaultSchedule::server_availability(std::int32_t server,
                                          double horizon) const {
  return availability(FaultTarget::Server, server, horizon);
}

double FaultSchedule::link_availability(std::int32_t cell,
                                        double horizon) const {
  return availability(FaultTarget::Link, cell, horizon);
}

FaultSchedule FaultSchedule::merged(const FaultSchedule& other) const {
  std::vector<FaultEvent> all = events_;
  all.insert(all.end(), other.events_.begin(), other.events_.end());
  return FaultSchedule(std::move(all));
}

FaultSchedule FaultSchedule::server_crash(std::int32_t server, double down_at,
                                          double up_at) {
  SCALPEL_REQUIRE(up_at >= down_at, "recovery cannot precede the crash");
  std::vector<FaultEvent> evs{{down_at, FaultTarget::Server, server, false}};
  if (std::isfinite(up_at)) {
    evs.push_back({up_at, FaultTarget::Server, server, true});
  }
  return FaultSchedule(std::move(evs));
}

FaultSchedule FaultSchedule::link_outage(std::int32_t cell, double down_at,
                                         double up_at) {
  SCALPEL_REQUIRE(up_at >= down_at, "restore cannot precede the outage");
  std::vector<FaultEvent> evs{{down_at, FaultTarget::Link, cell, false}};
  if (std::isfinite(up_at)) {
    evs.push_back({up_at, FaultTarget::Link, cell, true});
  }
  return FaultSchedule(std::move(evs));
}

FaultSchedule FaultSchedule::exponential_servers(std::size_t num_servers,
                                                 double mtbf, double mttr,
                                                 double horizon,
                                                 const Rng& rng) {
  SCALPEL_REQUIRE(mtbf > 0.0 && mttr > 0.0, "MTBF and MTTR must be positive");
  SCALPEL_REQUIRE(horizon > 0.0, "horizon must be positive");
  std::vector<FaultEvent> evs;
  for (std::size_t s = 0; s < num_servers; ++s) {
    Rng r = rng.substream(static_cast<std::uint64_t>(s));
    const auto id = static_cast<std::int32_t>(s);
    double t = 0.0;
    while (true) {
      t += r.exponential(1.0 / mtbf);
      if (t >= horizon) break;
      evs.push_back({t, FaultTarget::Server, id, false});
      t += r.exponential(1.0 / mttr);
      if (t >= horizon) break;  // stays down past the horizon
      evs.push_back({t, FaultTarget::Server, id, true});
    }
  }
  return FaultSchedule(std::move(evs));
}

BandwidthTrace BandwidthTrace::gilbert(double good_bw, double bad_bw,
                                       double mean_good_s, double mean_bad_s,
                                       double horizon, Rng& rng) {
  SCALPEL_REQUIRE(good_bw > 0.0 && bad_bw > 0.0, "bandwidths must be positive");
  SCALPEL_REQUIRE(mean_good_s > 0.0 && mean_bad_s > 0.0,
                  "holding times must be positive");
  std::vector<Segment> segs;
  bool good = true;
  double t = 0.0;
  while (t < horizon) {
    segs.push_back(Segment{t, good ? good_bw : bad_bw});
    t += rng.exponential(1.0 / (good ? mean_good_s : mean_bad_s));
    good = !good;
  }
  return BandwidthTrace(std::move(segs));
}

TelemetryChannel::TelemetryChannel(TelemetryChannelOptions opts,
                                   std::vector<double> initial_bandwidth,
                                   std::size_t num_servers,
                                   std::uint64_t seed)
    : opts_(opts) {
  SCALPEL_REQUIRE(opts_.delay >= 0.0, "telemetry delay must be non-negative");
  SCALPEL_REQUIRE(opts_.drop_prob >= 0.0 && opts_.drop_prob < 1.0,
                  "telemetry drop probability must be in [0, 1)");
  SCALPEL_REQUIRE(opts_.noise_sigma >= 0.0,
                  "telemetry noise sigma must be non-negative");
  SCALPEL_REQUIRE(opts_.quantum >= 0.0,
                  "telemetry quantum must be non-negative");
  SCALPEL_REQUIRE(opts_.flip_prob >= 0.0 && opts_.flip_prob < 1.0,
                  "telemetry flip probability must be in [0, 1)");
  const Rng base(seed);
  const std::size_t num_cells = initial_bandwidth.size();
  for (std::size_t c = 0; c < num_cells; ++c) {
    cell_rng_.push_back(base.substream(c));
    bw_history_.push_back({Sample{0.0, initial_bandwidth[c]}});
    bw_delivered_.push_back(Sample{0.0, initial_bandwidth[c]});
  }
  for (std::size_t s = 0; s < num_servers; ++s) {
    server_rng_.push_back(base.substream(num_cells + s));
    alive_history_.push_back({Sample{0.0, 1.0}});
    alive_delivered_.push_back(Sample{0.0, 1.0});
  }
}

const TelemetryChannel::Sample& TelemetryChannel::delayed(
    const std::deque<Sample>& history, double now, double delay) {
  const double cutoff = now - delay + 1e-12;
  const Sample* best = &history.front();
  for (const Sample& s : history) {
    if (s.time > cutoff) break;
    best = &s;
  }
  return *best;
}

void TelemetryChannel::prune(std::deque<Sample>& history, double now,
                             double delay) {
  // Keep the newest deliverable entry plus everything still in flight.
  const double cutoff = now - delay + 1e-12;
  while (history.size() > 1 && history[1].time <= cutoff) {
    history.pop_front();
  }
}

void TelemetryChannel::sample(double now, std::vector<double>& cell_bandwidth,
                              std::vector<bool>& server_alive,
                              std::vector<bool>& bw_fresh,
                              std::vector<double>& bw_age,
                              std::vector<bool>& alive_fresh) {
  SCALPEL_REQUIRE(cell_bandwidth.size() == cell_rng_.size(),
                  "telemetry sample must cover every cell");
  SCALPEL_REQUIRE(server_alive.size() == server_rng_.size(),
                  "telemetry sample must cover every server");
  bw_fresh.assign(cell_bandwidth.size(), true);
  bw_age.assign(cell_bandwidth.size(), 0.0);
  alive_fresh.assign(server_alive.size(), true);

  for (std::size_t c = 0; c < cell_bandwidth.size(); ++c) {
    auto& history = bw_history_[c];
    history.push_back(Sample{now, cell_bandwidth[c]});
    // Per tick, per signal: exactly one uniform (drop) and one normal
    // (noise) draw, regardless of outcome, so each stream's position is a
    // pure function of how many ticks have happened.
    Rng& rng = cell_rng_[c];
    const bool dropped = rng.uniform() < opts_.drop_prob;
    const double jitter = rng.normal(0.0, 1.0);
    if (!dropped) {
      Sample s = delayed(history, now, opts_.delay);
      if (opts_.noise_sigma > 0.0) {
        s.value *= std::exp(opts_.noise_sigma * jitter);
      }
      if (opts_.quantum > 0.0) {
        s.value = std::max(opts_.quantum,
                           std::round(s.value / opts_.quantum) * opts_.quantum);
      }
      bw_delivered_[c] = s;
    }
    bw_fresh[c] = !dropped;
    bw_age[c] = now - bw_delivered_[c].time;
    cell_bandwidth[c] = bw_delivered_[c].value;
    prune(history, now, opts_.delay);
  }

  for (std::size_t s = 0; s < server_alive.size(); ++s) {
    auto& history = alive_history_[s];
    history.push_back(Sample{now, server_alive[s] ? 1.0 : 0.0});
    Rng& rng = server_rng_[s];
    const bool dropped = rng.uniform() < opts_.drop_prob;
    const bool flipped = rng.uniform() < opts_.flip_prob;
    if (!dropped) {
      Sample v = delayed(history, now, opts_.delay);
      if (flipped) v.value = v.value > 0.5 ? 0.0 : 1.0;
      alive_delivered_[s] = v;
    }
    alive_fresh[s] = !dropped;
    server_alive[s] = alive_delivered_[s].value > 0.5;
    prune(history, now, opts_.delay);
  }
}

}  // namespace scalpel
