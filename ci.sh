#!/usr/bin/env bash
# Two-tier CI entry point (see README "Testing"):
#   ./ci.sh          — warnings-as-errors build + fast test tier (every push)
#   ./ci.sh full     — same build + the full suite including slow DES tests
set -euo pipefail

TIER="${1:-fast}"
BUILD_DIR="${BUILD_DIR:-build-ci}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S . -DSCALPEL_WERROR=ON
cmake --build "$BUILD_DIR" -j "$JOBS"

case "$TIER" in
  fast)
    ctest --test-dir "$BUILD_DIR" -L fast --output-on-failure -j "$JOBS"
    ;;
  full)
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
    ;;
  *)
    echo "usage: $0 [fast|full]" >&2
    exit 2
    ;;
esac
