#!/usr/bin/env bash
# Tiered CI entry point (see README "Testing"):
#   ./ci.sh          — warnings-as-errors build + fast test tier (every push)
#                      plus a one-seed slice of the shard determinism matrix
#   ./ci.sh full     — same build + the full suite including slow DES tests
#   ./ci.sh asan     — ASan+UBSan build (halt on first report) + fast tier
#   ./ci.sh ubsan    — UBSan-only build (halt on first report) + fast tier
#                      + one-seed shard slice + trace smoke; cheap enough to
#                      cover more ground than the asan tier per minute
#   ./ci.sh tsan     — ThreadSanitizer build + fast tier + the FULL
#                      shard×thread determinism matrix (the barrier and
#                      envelope hand-off run under the race detector)
#   ./ci.sh perf     — Release build, run bench_simcore (classic + sharded
#                      sections and the 10k→1M metro sweep), gate ns/event
#                      and solver us/solve against the committed
#                      BENCH_simcore.json (>15% fails), then gate the
#                      observability overhead (<2% hooks/steady-state)
#   ./ci.sh chaos    — distributed-control slice: the full ctrl suite, the
#                      distributed-plane shard bit-identity and fuzz
#                      scenarios, and a CLI convergence + failover smoke
#                      (coordinator crashes mid-run, audit log must export)
set -euo pipefail

TIER="${1:-fast}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

DEFAULT_DIR=build-ci
EXTRA=()
if [[ "$TIER" == "asan" ]]; then
  DEFAULT_DIR=build-asan
  EXTRA=(-DSCALPEL_SANITIZE=ON)
elif [[ "$TIER" == "ubsan" ]]; then
  DEFAULT_DIR=build-ubsan
  EXTRA=(-DSCALPEL_SANITIZE=undefined)
elif [[ "$TIER" == "tsan" ]]; then
  DEFAULT_DIR=build-tsan
  EXTRA=(-DSCALPEL_SANITIZE=thread)
elif [[ "$TIER" == "perf" ]]; then
  # Timing numbers are only comparable to the committed baseline from a
  # pure-Release build (bench_common/build_info flag Debug and sanitizer
  # builds as unoptimized, and the gate would skip itself).
  DEFAULT_DIR=build-perf
  EXTRA=(-DCMAKE_BUILD_TYPE=Release)
fi
BUILD_DIR="${BUILD_DIR:-$DEFAULT_DIR}"

# The perf tier measures, it doesn't lint (the fast tier already builds with
# -Werror); GCC 12's -O3 also trips a known -Wrestrict false positive in
# libstdc++ string concatenation, so warnings stay non-fatal here.
WERROR=ON
[[ "$TIER" == "perf" ]] && WERROR=OFF

cmake -B "$BUILD_DIR" -S . -DSCALPEL_WERROR="$WERROR" "${EXTRA[@]}"
cmake --build "$BUILD_DIR" -j "$JOBS"

# Observability smoke: record a traced overload run through the CLI and
# check the exported JSON parses and its events reconcile exactly with the
# conservation counters (arrived == completed_all + failed_all + shed_all +
# in_flight_end). Exercises the tracer, audit log, and exporters end to end.
trace_smoke() {
  local cli="$BUILD_DIR/examples/scalpel_cli"
  local dir
  dir="$(mktemp -d)"
  "$cli" topology --preset small_lab --out "$dir/topo.json"
  "$cli" trace --topology "$dir/topo.json" --overload 2.0 --horizon 20 \
    --out "$dir/trace.json" --audit-out "$dir/audit.json" \
    --metrics-out "$dir/metrics.json"
  "$cli" validate-trace --trace "$dir/trace.json" --metrics "$dir/metrics.json"
  rm -rf "$dir"
}

# Observability pipeline smoke: a lossy-fabric failover run with causal
# span tracing, the windowed time-series recorder, and the SLO burn-rate
# monitor all enabled, exported through the CLI, then validate-trace checks
# that the merged Chrome trace parses, the ctrl.* metrics reconcile with the
# span stream (sent == dropped + delivered + dead-lettered + in-flight),
# and the time series is monotone on its cumulative columns.
obs_smoke() {
  local cli="$BUILD_DIR/examples/scalpel_cli"
  local dir
  dir="$(mktemp -d)"
  "$cli" obs-report --horizon 24 --drop 0.15 --coord-mtbf 6 \
    --trace-out "$dir/obs_trace.json" \
    --timeseries-out "$dir/obs_series.json" \
    --metrics-out "$dir/obs_metrics.json" \
    --audit-out "$dir/obs_audit.json"
  "$cli" validate-trace --trace "$dir/obs_trace.json" \
    --metrics "$dir/obs_metrics.json"
  rm -rf "$dir"
}

# One-seed slice of the shard×thread determinism matrix: every scenario
# shape and both plan unit tests, seed index 0 only. Fast enough for every
# push; the full four-seed matrix (label "shard") runs in full/tsan.
shard_slice() {
  "$BUILD_DIR/tests/test_shard" --gtest_filter='Seeds/ShardEquivalenceTest.*/0:ShardEquivalence.*:ShardPlan.*'
}

# Distributed-control slice: every src/ctrl unit/replay test, the
# distributed-plane bit-identity and shard-invariance checks, then a CLI
# run where the coordinator crashes on an MTBF process over a lossy fabric
# and the audit log must come out parseable.
chaos_slice() {
  "$BUILD_DIR/tests/test_ctrl"
  "$BUILD_DIR/tests/test_shard" \
    --gtest_filter='ShardEquivalence.DistributedControlPlaneBitIdentical:ShardFuzz.DistributedPlaneIsShardCountInvariant'
  local cli="$BUILD_DIR/examples/scalpel_cli"
  local dir
  dir="$(mktemp -d)"
  "$cli" topology --preset campus --devices 8 --servers 3 --seed 7 \
    --out "$dir/topo.json"
  "$cli" distributed --topology "$dir/topo.json" --drop 0.2 \
    --coord-mtbf 10 --horizon 40 --audit-out "$dir/audit.json"
  python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
    "$dir/audit.json" 2>/dev/null \
    || grep -q '"cause"' "$dir/audit.json"
  rm -rf "$dir"
}

case "$TIER" in
  fast|asan|ubsan)
    ctest --test-dir "$BUILD_DIR" -L fast --output-on-failure -j "$JOBS"
    shard_slice
    trace_smoke
    obs_smoke
    ;;
  tsan)
    # The sharded engine's only concurrency is inside the epoch barriers;
    # tsan gets the whole matrix, fuzzer included.
    ctest --test-dir "$BUILD_DIR" -L 'fast|shard' --output-on-failure -j "$JOBS"
    trace_smoke
    ;;
  full)
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
    trace_smoke
    obs_smoke
    ;;
  chaos)
    chaos_slice
    ;;
  perf)
    # Produce a candidate report and gate it against the tracked baseline.
    # bench_simcore exits 1 when ns/event regresses past --tolerance; the
    # candidate JSON is left behind for artifact upload / re-baselining.
    # --shards/--sweep match how the committed baseline is produced, so the
    # sharded section gates too and the metro sweep stays fresh.
    CANDIDATE="${PERF_CANDIDATE:-$BUILD_DIR/BENCH_simcore.candidate.json}"
    "$BUILD_DIR/bench/bench_simcore" \
      --shards 4 --sweep 1000000 \
      --json "$CANDIDATE" \
      --check BENCH_simcore.json \
      --tolerance "${PERF_TOLERANCE:-0.15}"
    # Observability overhead gate: exits 1 if the disabled tracing hooks or
    # the steady-state time-series + SLO sampling cost exceed 2% of the
    # untraced wall time (or the end-to-end diff trips its regression
    # backstop).
    "$BUILD_DIR/bench/bench_obs_overhead"
    ;;
  *)
    echo "usage: $0 [fast|full|asan|ubsan|tsan|perf|chaos]" >&2
    exit 2
    ;;
esac
