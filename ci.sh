#!/usr/bin/env bash
# Tiered CI entry point (see README "Testing"):
#   ./ci.sh          — warnings-as-errors build + fast test tier (every push)
#   ./ci.sh full     — same build + the full suite including slow DES tests
#   ./ci.sh asan     — ASan+UBSan build (halt on first report) + fast tier
#   ./ci.sh tsan     — ThreadSanitizer build + fast tier (parallel runner)
set -euo pipefail

TIER="${1:-fast}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

DEFAULT_DIR=build-ci
EXTRA=()
if [[ "$TIER" == "asan" ]]; then
  DEFAULT_DIR=build-asan
  EXTRA=(-DSCALPEL_SANITIZE=ON)
elif [[ "$TIER" == "tsan" ]]; then
  DEFAULT_DIR=build-tsan
  EXTRA=(-DSCALPEL_SANITIZE=thread)
fi
BUILD_DIR="${BUILD_DIR:-$DEFAULT_DIR}"

cmake -B "$BUILD_DIR" -S . -DSCALPEL_WERROR=ON "${EXTRA[@]}"
cmake --build "$BUILD_DIR" -j "$JOBS"

# Observability smoke: record a traced overload run through the CLI and
# check the exported JSON parses and its events reconcile exactly with the
# conservation counters (arrived == completed_all + failed_all + shed_all +
# in_flight_end). Exercises the tracer, audit log, and exporters end to end.
trace_smoke() {
  local cli="$BUILD_DIR/examples/scalpel_cli"
  local dir
  dir="$(mktemp -d)"
  "$cli" topology --preset small_lab --out "$dir/topo.json"
  "$cli" trace --topology "$dir/topo.json" --overload 2.0 --horizon 20 \
    --out "$dir/trace.json" --audit-out "$dir/audit.json" \
    --metrics-out "$dir/metrics.json"
  "$cli" validate-trace --trace "$dir/trace.json" --metrics "$dir/metrics.json"
  rm -rf "$dir"
}

case "$TIER" in
  fast|asan|tsan)
    ctest --test-dir "$BUILD_DIR" -L fast --output-on-failure -j "$JOBS"
    trace_smoke
    ;;
  full)
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
    trace_smoke
    ;;
  *)
    echo "usage: $0 [fast|full|asan|tsan]" >&2
    exit 2
    ;;
esac
