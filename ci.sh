#!/usr/bin/env bash
# Tiered CI entry point (see README "Testing"):
#   ./ci.sh          — warnings-as-errors build + fast test tier (every push)
#   ./ci.sh full     — same build + the full suite including slow DES tests
#   ./ci.sh asan     — ASan+UBSan build (halt on first report) + fast tier
#   ./ci.sh tsan     — ThreadSanitizer build + fast tier (parallel runner)
set -euo pipefail

TIER="${1:-fast}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

DEFAULT_DIR=build-ci
EXTRA=()
if [[ "$TIER" == "asan" ]]; then
  DEFAULT_DIR=build-asan
  EXTRA=(-DSCALPEL_SANITIZE=ON)
elif [[ "$TIER" == "tsan" ]]; then
  DEFAULT_DIR=build-tsan
  EXTRA=(-DSCALPEL_SANITIZE=thread)
fi
BUILD_DIR="${BUILD_DIR:-$DEFAULT_DIR}"

cmake -B "$BUILD_DIR" -S . -DSCALPEL_WERROR=ON "${EXTRA[@]}"
cmake --build "$BUILD_DIR" -j "$JOBS"

case "$TIER" in
  fast|asan|tsan)
    ctest --test-dir "$BUILD_DIR" -L fast --output-on-failure -j "$JOBS"
    ;;
  full)
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
    ;;
  *)
    echo "usage: $0 [fast|full|asan|tsan]" >&2
    exit 2
    ;;
esac
