#!/usr/bin/env bash
# Three-tier CI entry point (see README "Testing"):
#   ./ci.sh          — warnings-as-errors build + fast test tier (every push)
#   ./ci.sh full     — same build + the full suite including slow DES tests
#   ./ci.sh asan     — ASan+UBSan build (halt on first report) + fast tier
set -euo pipefail

TIER="${1:-fast}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

DEFAULT_DIR=build-ci
EXTRA=()
if [[ "$TIER" == "asan" ]]; then
  DEFAULT_DIR=build-asan
  EXTRA=(-DSCALPEL_SANITIZE=ON)
fi
BUILD_DIR="${BUILD_DIR:-$DEFAULT_DIR}"

cmake -B "$BUILD_DIR" -S . -DSCALPEL_WERROR=ON "${EXTRA[@]}"
cmake --build "$BUILD_DIR" -j "$JOBS"

case "$TIER" in
  fast|asan)
    ctest --test-dir "$BUILD_DIR" -L fast --output-on-failure -j "$JOBS"
    ;;
  full)
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
    ;;
  *)
    echo "usage: $0 [fast|full|asan]" >&2
    exit 2
    ;;
esac
