// F6 — Speedup of the joint scheme over device-only execution, per model
// and device class. The companion LEIME evaluation reports 1.1-18.7x across
// situations; the same spread should appear here: little gain where the
// device is strong, order-of-magnitude gains where it is weak.

#include "bench_common.hpp"
#include "profile/latency_model.hpp"
#include "nn/models.hpp"

using namespace scalpel;

namespace {

ClusterTopology one_device(const std::string& device_class,
                           const std::string& model) {
  ClusterTopology t;
  const CellId cell = t.add_cell(Cell{-1, "cell", mbps(100.0), ms(2.0)});
  Device d;
  d.name = "dev";
  d.compute = profiles::by_name(device_class);
  d.energy = profiles::energy_phone();
  d.cell = cell;
  d.model = model;
  d.arrival_rate = 0.5;  // light load isolates per-task speedup
  d.min_accuracy = 0.50;
  t.add_device(d);
  EdgeServer s;
  s.name = "edge";
  s.compute = profiles::edge_gpu_t4();
  s.backhaul_rtt = ms(1.0);
  t.add_server(s);
  return t;
}

}  // namespace

int main() {
  bench::banner("F6", "Speedup over device-only per (device, model)");
  Table t({"device", "model", "device-only ms", "joint ms", "speedup"});
  double min_speedup = 1e9;
  double max_speedup = 0.0;
  for (const char* device :
       {"iot_camera", "raspberry_pi4", "smartphone", "jetson_nano"}) {
    for (const char* model :
         {"mobilenet_v1", "resnet18", "alexnet", "vgg16"}) {
      const ProblemInstance instance(one_device(device, model));
      // Per-task device-only latency (no queueing at this light load).
      const auto& bundle = instance.bundle_for(0);
      const double local = LatencyModel::graph_latency(
          bundle.graph, instance.topology().device(0).compute);
      const auto joint = bench::run_scheme(instance, "joint");
      const double fast = joint.predicted[0].expected_latency;
      const double speedup = local / fast;
      min_speedup = std::min(min_speedup, speedup);
      max_speedup = std::max(max_speedup, speedup);
      t.add_row({device, model, bench::fmt_ms(local), bench::fmt_ms(fast),
                 Table::num(speedup, 2) + "x"});
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("speedup range: %.2fx .. %.2fx (reference band 1.1x - 18.7x)\n",
              min_speedup, max_speedup);
  return 0;
}
