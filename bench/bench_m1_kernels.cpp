// M1 — Kernel and optimizer microbenchmarks (google-benchmark): the raw
// compute substrate behind the executor and the per-solve costs of the
// optimization algorithms.

#include <benchmark/benchmark.h>

#include "nn/executor.hpp"
#include "nn/kernels.hpp"
#include "nn/models.hpp"
#include "surgery/exit_setting.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace scalpel {
namespace {

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  Rng rng(1);
  const auto a = Tensor::randn(Shape{n, n}, rng);
  const auto b = Tensor::randn(Shape{n, n}, rng);
  Tensor c(Shape{n, n});
  for (auto _ : state) {
    kernels::gemm(a.data(), b.data(), nullptr, c.data(), n, n, n, nullptr);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmThreaded(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  Rng rng(1);
  const auto a = Tensor::randn(Shape{n, n}, rng);
  const auto b = Tensor::randn(Shape{n, n}, rng);
  Tensor c(Shape{n, n});
  ThreadPool pool(4);
  for (auto _ : state) {
    kernels::gemm(a.data(), b.data(), nullptr, c.data(), n, n, n, &pool);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmThreaded)->Arg(256);

void BM_Conv2d(benchmark::State& state) {
  const auto channels = static_cast<std::int64_t>(state.range(0));
  Rng rng(2);
  const auto input = Tensor::randn(Shape{channels, 28, 28}, rng);
  const auto w = Tensor::randn(Shape{channels, channels, 3, 3}, rng);
  const auto b = Tensor::zeros(Shape{channels});
  for (auto _ : state) {
    auto out = kernels::conv2d(input, w, b, 1, 1, nullptr);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Conv2d)->Arg(16)->Arg(32)->Arg(64);

void BM_DwConv2d(benchmark::State& state) {
  const auto channels = static_cast<std::int64_t>(state.range(0));
  Rng rng(3);
  const auto input = Tensor::randn(Shape{channels, 56, 56}, rng);
  const auto w = Tensor::randn(Shape{channels, 3, 3}, rng);
  const auto b = Tensor::zeros(Shape{channels});
  for (auto _ : state) {
    auto out = kernels::dwconv2d(input, w, b, 1, 1, nullptr);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_DwConv2d)->Arg(32)->Arg(128);

void BM_Softmax(benchmark::State& state) {
  Rng rng(4);
  const auto input = Tensor::randn(Shape{1000}, rng);
  for (auto _ : state) {
    auto out = kernels::softmax(input);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Softmax);

void BM_QuantizeInt8(benchmark::State& state) {
  Rng rng(5);
  const auto t = Tensor::randn(Shape{256, 28, 28}, rng);
  for (auto _ : state) {
    auto q = kernels::quantize_int8(t);
    benchmark::DoNotOptimize(q.data.data());
  }
  state.SetBytesProcessed(state.iterations() * t.shape().bytes());
}
BENCHMARK(BM_QuantizeInt8);

void BM_DequantizeInt8(benchmark::State& state) {
  Rng rng(5);
  const auto q = kernels::quantize_int8(Tensor::randn(Shape{256, 28, 28}, rng));
  for (auto _ : state) {
    auto t = kernels::dequantize_int8(q);
    benchmark::DoNotOptimize(t.data());
  }
}
BENCHMARK(BM_DequantizeInt8);

void BM_TinyCnnForward(benchmark::State& state) {
  const auto g = models::tiny_cnn();
  const Executor ex(g, 5);
  Rng rng(6);
  const auto input = Tensor::randn(g.node(0).out_shape, rng);
  for (auto _ : state) {
    auto out = ex.run(input);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_TinyCnnForward);

void BM_LenetForward(benchmark::State& state) {
  const auto g = models::lenet5();
  const Executor ex(g, 5);
  Rng rng(7);
  const auto input = Tensor::randn(g.node(0).out_shape, rng);
  for (auto _ : state) {
    auto out = ex.run(input);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_LenetForward);

void BM_ExitSettingDp(benchmark::State& state) {
  const auto g = models::mobilenet_v1();
  ExitCandidateOptions copts;
  copts.min_spacing = 0.04;
  const auto cands = find_exit_candidates(g, copts);
  const auto acc = AccuracyModel::for_model("mobilenet_v1");
  const auto profile = profiles::raspberry_pi4();
  ExitSettingOptions opts;
  opts.min_accuracy = 0.63;
  opts.coverage_bins = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto r = dp_exit_setting(g, cands, acc, profile, opts);
    benchmark::DoNotOptimize(r.expected_latency);
  }
}
BENCHMARK(BM_ExitSettingDp)->Arg(50)->Arg(100)->Arg(200);

void BM_ExitSettingGreedy(benchmark::State& state) {
  const auto g = models::mobilenet_v1();
  ExitCandidateOptions copts;
  copts.min_spacing = 0.04;
  const auto cands = find_exit_candidates(g, copts);
  const auto acc = AccuracyModel::for_model("mobilenet_v1");
  const auto profile = profiles::raspberry_pi4();
  ExitSettingOptions opts;
  opts.min_accuracy = 0.63;
  for (auto _ : state) {
    auto r = greedy_exit_setting(g, cands, acc, profile, opts);
    benchmark::DoNotOptimize(r.expected_latency);
  }
}
BENCHMARK(BM_ExitSettingGreedy);

}  // namespace
}  // namespace scalpel

BENCHMARK_MAIN();
