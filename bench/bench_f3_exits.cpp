// F3 — Exit-setting algorithms: the accuracy-latency frontier and the cost
// of computing it. Sweeps the accuracy floor and compares the coverage-DP
// (the paper-style algorithm), greedy, and exhaustive search on expected
// latency and configurations examined.

#include "bench_common.hpp"
#include "nn/models.hpp"
#include "surgery/exit_setting.hpp"

using namespace scalpel;

int main() {
  bench::banner("F3", "Exit setting: accuracy-latency frontier + algo cost");
  const auto g = models::mobilenet_v1();
  ExitCandidateOptions copts;
  copts.num_classes = 1000;
  copts.min_spacing = 0.04;
  const auto cands = find_exit_candidates(g, copts);
  const auto acc = AccuracyModel::for_model("mobilenet_v1");
  const auto device = profiles::raspberry_pi4();
  std::printf("model mobilenet_v1 (%zu exit candidates), device %s, "
              "a_max=%.3f\n\n",
              cands.size(), device.name.c_str(), acc.a_max);

  ExitSettingOptions base;
  base.theta_grid = {0.0, 0.15, 0.30, 0.45, 0.60};
  base.max_exits = 3;

  Table t({"A_min", "DP ms", "DP exits", "DP acc", "greedy ms", "greedy acc",
           "exhaustive ms", "DP evals", "greedy evals", "exh. evals"});
  for (double floor : {0.0, 0.55, 0.60, 0.63, 0.66, 0.68, 0.70}) {
    ExitSettingOptions opts = base;
    opts.min_accuracy = floor;
    const auto dp = dp_exit_setting(g, cands, acc, device, opts);
    const auto gr = greedy_exit_setting(g, cands, acc, device, opts);
    const auto ex = exhaustive_exit_setting(g, cands, acc, device, opts);
    auto ms_or = [](const ExitSettingResult& r) {
      return r.feasible ? bench::fmt_ms(r.expected_latency)
                        : std::string("infeasible");
    };
    t.add_row({Table::num(floor, 2), ms_or(dp),
               Table::num(static_cast<std::int64_t>(dp.policy.exits.size())),
               dp.feasible ? Table::num(dp.stats.expected_accuracy, 3) : "-",
               ms_or(gr),
               gr.feasible ? Table::num(gr.stats.expected_accuracy, 3) : "-",
               ms_or(ex),
               Table::num(static_cast<std::int64_t>(dp.evaluations)),
               Table::num(static_cast<std::int64_t>(gr.evaluations)),
               Table::num(static_cast<std::int64_t>(ex.evaluations))});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Expected shape: latency rises as the floor tightens; the DP\n"
              "tracks exhaustive closely at a fraction of the evaluations.\n");
  return 0;
}
