// F18 — Control under imperfect telemetry: the measurement path between the
// cluster and the controller is impaired (reporting delay, report loss,
// multiplicative noise, liveness misreads) while a modest server-churn
// process runs underneath. Sweeps telemetry quality from clean to badly
// degraded and compares the hardened online controller (sanitizer +
// watchdog + plan validation) against the naive online controller
// (transparent robustness defaults — believes every reading immediately)
// and a static joint plan that never reacts at all. All schemes see the
// identical fault script, arrival seed, and channel seed, so every gap is
// attributable to how the controller treats what it is told.

#include <limits>

#include "bench_common.hpp"
#include "core/online.hpp"
#include "util/rng.hpp"

using namespace scalpel;

namespace {

struct Impairment {
  const char* label;
  TelemetryChannelOptions channel;
};

Impairment impairment_level(double q) {
  Impairment imp;
  imp.label = "";
  imp.channel.delay = 1.5 * q;
  imp.channel.drop_prob = 0.4 * q;
  imp.channel.noise_sigma = 0.5 * q;
  imp.channel.flip_prob = 0.25 * q;
  return imp;
}

struct Row {
  std::string scheme;
  SimMetrics m;
  std::size_t reoptimizations = 0;
  std::size_t failovers = 0;
  std::size_t telemetry_rejected = 0;
  std::size_t solver_timeouts = 0;
  std::size_t plans_rejected = 0;
  std::size_t fallbacks = 0;
};

Row run_scheme(const ProblemInstance& instance, const ClusterTopology& topo,
               const std::string& scheme, const FaultSchedule& schedule,
               const TelemetryChannelOptions& channel, double horizon) {
  const bool online = scheme != "static joint";
  const Decision initial = bench::run_scheme(instance, "joint");

  Simulator::Options opts;
  opts.horizon = horizon;
  opts.warmup = 5.0;
  opts.seed = 61;
  opts.faults.schedule = schedule;
  opts.faults.policy = FaultPolicy::RetryOffload;
  opts.faults.max_retries = 20;
  opts.faults.retry_backoff = 0.25;
  opts.faults.retry_timeout = 15.0;
  opts.telemetry = channel;
  if (online) opts.control_interval = 0.5;

  OnlineController::Options copts;
  copts.hysteresis = 0.25;
  copts.joint = bench::joint_opts();
  if (scheme == "hardened online") {
    copts.robustness.sanitizer.max_age = 4.0;
    copts.robustness.sanitizer.outlier_band = 0.6;
    copts.robustness.sanitizer.median_window = 5;
    copts.robustness.sanitizer.confirm_windows = 2;
    copts.robustness.sanitizer.flap_threshold = 3;
    copts.robustness.sanitizer.flap_window = 10;
    copts.robustness.sanitizer.flap_hold = 4;
    copts.robustness.solve_budget_seconds = 0.5;
  }
  // "naive online" keeps the transparent defaults: every reading believed,
  // no watchdog — the pre-hardening controller.

  OnlineController controller(topo, copts);
  Simulator sim(instance, initial, opts);
  if (online) {
    sim.set_controller([&controller](const Observation& o) {
      ControlAction a;
      if (controller.observe(o)) {
        a.decision = controller.decision();
        a.admit_fraction = controller.admit_fraction();
      }
      return a;
    });
  }

  Row r;
  r.scheme = scheme;
  r.m = sim.run();
  if (online) {
    r.reoptimizations = controller.reoptimizations();
    r.failovers = controller.failovers();
    r.telemetry_rejected = controller.telemetry_rejections();
    r.solver_timeouts = controller.solver_timeouts();
    r.plans_rejected = controller.plans_rejected();
    r.fallbacks = controller.fallbacks();
  }

  // Whatever the channel lied about, the simulated world stays conserved:
  // every arrival is terminal or live, exactly once.
  SCALPEL_REQUIRE(r.m.arrived == r.m.completed_all + r.m.failed_all +
                                     r.m.shed_all + r.m.in_flight_end,
                  "conservation violated under impaired telemetry");
  return r;
}

}  // namespace

int main() {
  bench::banner("F18", "Deadline satisfaction under imperfect telemetry");
  const auto topo = clusters::small_lab();
  const ProblemInstance instance(topo);
  const double horizon = 80.0;

  std::printf(
      "channel model: reporting delay 1.5q s, report loss 0.4q, lognormal\n"
      "bandwidth noise sigma 0.5q, liveness misread prob 0.25q, for quality\n"
      "knob q swept below; server churn underneath (MTBF 20 s, MTTR 4 s);\n"
      "identical fault script + arrival seed + channel seed per scheme.\n"
      "hardened = staleness holds, outlier rejection, liveness debounce,\n"
      "flap freeze, 0.5 s solver watchdog; naive = believes every reading.\n\n");

  const Rng fault_rng(7100);
  const auto schedule = FaultSchedule::exponential_servers(
      topo.servers().size(), 20.0, 4.0, horizon, fault_rng);

  const std::vector<std::string> schemes = {"hardened online", "naive online",
                                            "static joint"};
  for (const double q : {0.0, 0.25, 0.5, 1.0}) {
    const Impairment imp = impairment_level(q);
    std::printf("-- telemetry quality q = %.2f --\n", q);
    Table t({"scheme", "deadline sat.", "availability", "p99 ms", "reopt",
             "failovers", "telem rej", "wd trips", "plan rej", "fallbacks"});
    double hardened_sat = -1.0;
    double naive_sat = -1.0;
    for (const auto& scheme : schemes) {
      const Row r =
          run_scheme(instance, topo, scheme, schedule, imp.channel, horizon);
      if (scheme == "hardened online") hardened_sat = r.m.deadline_satisfaction;
      if (scheme == "naive online") naive_sat = r.m.deadline_satisfaction;
      t.add_row({r.scheme, Table::num(r.m.deadline_satisfaction, 3),
                 Table::num(r.m.availability, 3), bench::fmt_ms(r.m.latency.p99()),
                 Table::num(static_cast<std::int64_t>(r.reoptimizations)),
                 Table::num(static_cast<std::int64_t>(r.failovers)),
                 Table::num(static_cast<std::int64_t>(r.telemetry_rejected)),
                 Table::num(static_cast<std::int64_t>(r.solver_timeouts)),
                 Table::num(static_cast<std::int64_t>(r.plans_rejected)),
                 Table::num(static_cast<std::int64_t>(r.fallbacks))});
    }
    std::printf("%s\n", t.to_string().c_str());

    // The acceptance bar for this figure: hardening never costs deadline
    // satisfaction — not on clean telemetry (transparent defaults), not at
    // any impairment level.
    if (hardened_sat + 1e-9 < naive_sat) {
      std::printf("!! hardened %.4f < naive %.4f at q=%.2f\n", hardened_sat,
                  naive_sat, q);
    }
    SCALPEL_REQUIRE(hardened_sat + 1e-9 >= naive_sat,
                    "hardened controller lost to naive at this sweep point");
  }

  std::printf(
      "Expected shape: at q = 0 hardened and naive coincide (the sanitizer\n"
      "and watchdog are transparent on clean telemetry) and both beat the\n"
      "static plan by failing over around real outages. As q grows the\n"
      "naive controller chases noise and phantom liveness flips — spurious\n"
      "re-solves and failovers onto wrong beliefs — and falls below even\n"
      "the static plan. The hardened controller filters most of it (its\n"
      "failover count stays near the true outage count at every q) and\n"
      "holds strictly above naive at every sweep point, though badly\n"
      "degraded telemetry still costs it ground against static: filtering\n"
      "recovers trust, not information.\n");
  return 0;
}
