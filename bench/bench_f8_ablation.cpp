// F8 — Ablation: the joint optimizer against itself with surgery frozen,
// allocation frozen, or exits disabled — isolating where the gains come
// from. This is the figure that justifies *joint* optimization.

#include "bench_common.hpp"

using namespace scalpel;

int main() {
  bench::banner("F8", "Ablation: joint vs surgery-only vs allocation-only");

  clusters::CampusOptions copts;
  copts.num_devices = 12;
  copts.num_servers = 3;
  copts.seed = 17;
  const ProblemInstance instance(clusters::campus(copts));

  struct Variant {
    const char* name;
    JointOptions opts;
  };
  std::vector<Variant> variants;
  {
    Variant v{"joint (full)", bench::joint_opts()};
    variants.push_back(v);
  }
  {
    Variant v{"surgery-only (no alloc. opt.)", bench::joint_opts()};
    v.opts.enable_allocation = false;
    variants.push_back(v);
  }
  {
    Variant v{"allocation-only (frozen partition)", bench::joint_opts()};
    v.opts.enable_surgery = false;
    variants.push_back(v);
  }
  {
    Variant v{"joint w/o exits (partition+alloc)", bench::joint_opts()};
    v.opts.enable_exits = false;
    variants.push_back(v);
  }

  Table t({"variant", "pred. mean ms", "DES mean ms (±95% CI)",
           "DES p99 ms (±95% CI)", "deadline sat.", "offload frac."});
  for (const auto& v : variants) {
    const auto d = JointOptimizer(v.opts).optimize(instance);
    const auto m = bench::simulate_replicated(instance, d, 30.0);
    t.add_row({v.name, bench::fmt_ms(d.mean_latency),
               bench::fmt_mean_ci_ms(m.mean_latency),
               bench::fmt_mean_ci_ms(m.p99_latency),
               bench::fmt_mean_ci(m.deadline_satisfaction),
               bench::fmt_mean_ci(m.offload_fraction, 2)});
  }
  // Plain neurosurgeon as the no-joint-anything anchor.
  const auto ns = bench::run_scheme(instance, "neurosurgeon");
  const auto mns = bench::simulate_replicated(instance, ns, 30.0);
  t.add_row({"neurosurgeon (anchor)", bench::fmt_ms(ns.mean_latency),
             bench::fmt_mean_ci_ms(mns.mean_latency),
             bench::fmt_mean_ci_ms(mns.p99_latency),
             bench::fmt_mean_ci(mns.deadline_satisfaction),
             bench::fmt_mean_ci(mns.offload_fraction, 2)});
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Expected shape: full joint <= each single-sided variant;\n"
              "both single-sided variants still beat the anchor.\n");
  return 0;
}
