// OBS — Observability overhead: cost of the per-task tracing hooks on the
// F17 overload workload (the event-densest configuration: bounded queues,
// expiry shedding, sustained overload). Two claims are measured:
//   1. tracing DISABLED (the default) costs < 2% wall time — the hooks
//      compiled into the simulator hot path reduce to one branch each;
//   2. tracing ENABLED stays modest (ring writes, no allocation).
// Each configuration is timed over several alternating repetitions so drift
// in machine load cancels out rather than biasing one side.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "obs/trace.hpp"

using namespace scalpel;

namespace {

ClusterTopology overloaded_campus() {
  clusters::CampusOptions opts;
  opts.num_devices = 12;
  opts.num_servers = 2;
  opts.seed = 17;
  ClusterTopology topo = clusters::campus(opts);
  // Push every device past saturation, as F17's sweep tail does.
  for (const auto& d : topo.devices()) {
    topo.set_device_arrival_rate(d.id, d.arrival_rate * 3.0);
  }
  return topo;
}

Simulator::Options f17_sim(std::size_t trace_capacity) {
  Simulator::Options o;
  o.horizon = 300.0;
  o.warmup = 10.0;
  o.seed = 17;
  o.overload.policy = OverloadPolicy::ShedExpired;
  o.overload.device_queue_limit = 32;
  o.overload.upload_queue_limit = 8;
  o.overload.server_queue_limit = 8;
  o.trace_capacity = trace_capacity;
  return o;
}

double time_run(const ProblemInstance& instance, const Decision& d,
                const Simulator::Options& opts, std::size_t* events) {
  const auto t0 = std::chrono::steady_clock::now();
  Simulator sim(instance, d, opts);
  const SimMetrics m = sim.run();
  const auto t1 = std::chrono::steady_clock::now();
  SCALPEL_REQUIRE(m.arrived > 0, "bench run produced no arrivals");
  if (events) *events = static_cast<std::size_t>(sim.trace().recorded());
  return std::chrono::duration<double>(t1 - t0).count();
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

}  // namespace

int main() {
  bench::banner("OBS", "observability overhead on the F17 overload workload");

  const ClusterTopology topo = overloaded_campus();
  const ProblemInstance instance(topo);
  const Decision d = bench::run_scheme(instance, "joint");

  // Untimed sizing run: learn the event volume so the timed tracing-on runs
  // preallocate a right-sized ring instead of paying for an oversized one.
  std::size_t events = 0;
  time_run(instance, d, f17_sim(1 << 22), &events);
  std::size_t ring = 1024;
  while (ring < events + events / 4) ring *= 2;

  constexpr int kReps = 7;
  std::vector<double> off_times;
  std::vector<double> on_times;
  // Warm the untraced path too before timing.
  time_run(instance, d, f17_sim(0), nullptr);
  for (int r = 0; r < kReps; ++r) {
    off_times.push_back(time_run(instance, d, f17_sim(0), nullptr));
    on_times.push_back(time_run(instance, d, f17_sim(ring), &events));
  }
  const double off = median(off_times);
  const double on = median(on_times);
  const double enabled_overhead = (on - off) / off * 100.0;

  Table t({"configuration", "median wall s", "events", "overhead vs off"});
  t.add_row({"tracing off (default)", Table::num(off, 4), "0", "baseline"});
  t.add_row({"tracing on (sized ring)", Table::num(on, 4),
             Table::num(static_cast<std::int64_t>(events)),
             Table::num(enabled_overhead, 2) + " %"});
  std::printf("%s\n", t.to_string().c_str());

  // The <2% claim is about the hooks when tracing is off. The disabled
  // tracer's record() is a single predictable branch; measure it directly
  // and express the total hook cost as a fraction of the untraced run.
  TaskTracer disabled;
  const auto t0 = std::chrono::steady_clock::now();
  constexpr std::uint64_t kCalls = 50'000'000;
  for (std::uint64_t i = 0; i < kCalls; ++i) {
    disabled.record(0.0, i, 0, -1, TraceEventType::kArrive);
    // Compiler barrier: without it the whole no-op loop folds away and the
    // per-call figure reads as exactly zero.
    asm volatile("" : : "g"(&disabled) : "memory");
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double per_call = std::chrono::duration<double>(t1 - t0).count() /
                          static_cast<double>(kCalls);
  SCALPEL_REQUIRE(disabled.recorded() == 0,
                  "disabled tracer must not record");
  const double hook_cost = per_call * static_cast<double>(events);
  const double off_overhead = hook_cost / off * 100.0;

  std::printf("disabled record(): %.2f ns/call; %zu hook sites/run -> "
              "%.4f%% of the untraced wall time\n",
              per_call * 1e9, events, off_overhead);
  const bool pass = off_overhead < 2.0;
  std::printf("%s: tracing-off overhead %.4f%% %s 2%% budget\n",
              pass ? "PASS" : "FAIL", off_overhead, pass ? "<" : ">=");
  return pass ? 0 : 1;
}
