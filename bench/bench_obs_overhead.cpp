// OBS — Observability overhead: cost of the per-task tracing hooks on the
// F17 overload workload (the event-densest configuration: bounded queues,
// expiry shedding, sustained overload). Three claims are measured:
//   1. tracing DISABLED (the default) costs < 2% wall time — the hooks
//      compiled into the simulator hot path reduce to one branch each;
//   2. tracing ENABLED stays modest (ring writes, no allocation);
//   3. the windowed time-series recorder + SLO burn-rate monitor cost < 2%
//      wall time in steady state — sampling is a fixed-interval row write
//      into a preallocated ring plus two cursor-advanced burn windows,
//      never an allocation; gated on the measured per-sample cost, with a
//      loose end-to-end backstop against gross regressions.
// Each configuration is timed over several alternating repetitions so drift
// in machine load cancels out rather than biasing one side.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

using namespace scalpel;

namespace {

ClusterTopology overloaded_campus() {
  clusters::CampusOptions opts;
  opts.num_devices = 12;
  opts.num_servers = 2;
  opts.seed = 17;
  ClusterTopology topo = clusters::campus(opts);
  // Push every device past saturation, as F17's sweep tail does.
  for (const auto& d : topo.devices()) {
    topo.set_device_arrival_rate(d.id, d.arrival_rate * 3.0);
  }
  return topo;
}

Simulator::Options f17_sim(std::size_t trace_capacity) {
  Simulator::Options o;
  // Long enough that the per-sample telemetry cost (the overhead under
  // test) accumulates well clear of scheduler noise on a single run.
  o.horizon = 1200.0;
  o.warmup = 10.0;
  o.seed = 17;
  o.overload.policy = OverloadPolicy::ShedExpired;
  o.overload.device_queue_limit = 32;
  o.overload.upload_queue_limit = 8;
  o.overload.server_queue_limit = 8;
  o.trace_capacity = trace_capacity;
  return o;
}

double time_run(const ProblemInstance& instance, const Decision& d,
                const Simulator::Options& opts, std::size_t* events) {
  const auto t0 = std::chrono::steady_clock::now();
  Simulator sim(instance, d, opts);
  const SimMetrics m = sim.run();
  const auto t1 = std::chrono::steady_clock::now();
  SCALPEL_REQUIRE(m.arrived > 0, "bench run produced no arrivals");
  if (events) *events = static_cast<std::size_t>(sim.trace().recorded());
  return std::chrono::duration<double>(t1 - t0).count();
}

// Scheduler noise is one-sided — preemption and frequency dips only ever add
// wall time — so the fastest runs estimate the intrinsic cost. Averaging the
// fastest quarter (rather than taking the single minimum) keeps the estimate
// stable against timer granularity on runs this short (~12 ms) while still
// rejecting the noisy tail.
double best(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const std::size_t k = std::max<std::size_t>(1, xs.size() / 4);
  double sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) sum += xs[i];
  return sum / static_cast<double>(k);
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

/// The obs-report default SLO: deadline satisfaction >= 0.9, fast 10 s
/// window at 1.0x paired with a sustained 60 s window at 0.5x.
SloSpec deadline_spec() {
  SloSpec spec;
  spec.name = "deadline";
  spec.good = "sim.deadline_met";
  spec.total = "sim.deadline_total";
  spec.windows = {{10.0, 1.0}, {60.0, 0.5}};
  return spec;
}

}  // namespace

int main() {
  bench::banner("OBS", "observability overhead on the F17 overload workload");

  const ClusterTopology topo = overloaded_campus();
  const ProblemInstance instance(topo);
  const Decision d = bench::run_scheme(instance, "joint");

  // Untimed sizing run: learn the event volume so the timed tracing-on runs
  // preallocate a right-sized ring instead of paying for an oversized one.
  std::size_t events = 0;
  time_run(instance, d, f17_sim(1 << 22), &events);
  std::size_t ring = 1024;
  while (ring < events + events / 4) ring *= 2;

  // Telemetry configuration: the recorder samples on a 0.5 s grid and the
  // SLO monitor re-evaluates two burn windows per sample — the obs-report
  // pipeline minus control-plane sources. One recorder for the whole
  // process, as obs-report has: clear() between reps keeps the same storage
  // block, so reps differ by run noise and not by allocator placement.
  // Capacity fits every row of a run (1200 s on a 0.5 s grid is ~2400 rows);
  // an oversized ring would bill its zero-fill (freeze_columns) to the
  // timed run.
  TimeSeriesRecorder obs_recorder(4096);
  auto obs_run = [&](std::size_t* samples) {
    obs_recorder.clear();
    SloMonitor slo(&obs_recorder);
    slo.add(deadline_spec());
    Simulator::Options o = f17_sim(0);
    o.obs_interval = 0.5;
    o.recorder = &obs_recorder;
    o.slo = &slo;
    const double t = time_run(instance, d, o, nullptr);
    if (samples) *samples = obs_recorder.size();
    return t;
  };

  constexpr int kReps = 17;
  std::vector<double> off_times;
  std::vector<double> on_diffs;
  std::vector<double> obs_diffs;
  std::size_t samples = 0;
  // Warm the untraced path too before timing.
  time_run(instance, d, f17_sim(0), nullptr);
  // Each measured configuration is paired with its own immediately-adjacent
  // baseline run and scored as the difference of the pair: machine-load and
  // frequency drift move both runs of a pair together (they are ~25 ms
  // apart) and cancel in the difference, where an absolute comparison of
  // medians taken seconds apart would not. The telemetry run also times
  // before the tracing-on run: the latter drags a multi-MB event ring
  // through the cache, and timing the small recorder config right behind it
  // would bill that refill to the recorder.
  for (int r = 0; r < kReps; ++r) {
    const double off1 = time_run(instance, d, f17_sim(0), nullptr);
    obs_diffs.push_back(obs_run(&samples) - off1);
    const double off2 = time_run(instance, d, f17_sim(0), nullptr);
    on_diffs.push_back(time_run(instance, d, f17_sim(ring), &events) - off2);
    off_times.push_back(off1);
    off_times.push_back(off2);
  }
  const double off = best(off_times);
  const double on = off + median(on_diffs);
  const double obs = off + median(obs_diffs);
  const double enabled_overhead = median(on_diffs) / off * 100.0;
  const double obs_overhead = median(obs_diffs) / off * 100.0;

  Table t({"configuration", "best wall s", "events", "overhead vs off"});
  t.add_row({"tracing off (default)", Table::num(off, 4), "0", "baseline"});
  t.add_row({"tracing on (sized ring)", Table::num(on, 4),
             Table::num(static_cast<std::int64_t>(events)),
             Table::num(enabled_overhead, 2) + " %"});
  t.add_row({"time series + SLO monitor", Table::num(obs, 4),
             Table::num(static_cast<std::int64_t>(samples)),
             Table::num(obs_overhead, 2) + " %"});
  std::printf("%s\n", t.to_string().c_str());

  // The <2% claim is about the hooks when tracing is off. The disabled
  // tracer's record() is a single predictable branch; measure it directly
  // and express the total hook cost as a fraction of the untraced run.
  TaskTracer disabled;
  const auto t0 = std::chrono::steady_clock::now();
  constexpr std::uint64_t kCalls = 50'000'000;
  for (std::uint64_t i = 0; i < kCalls; ++i) {
    disabled.record(0.0, i, 0, -1, TraceEventType::kArrive);
    // Compiler barrier: without it the whole no-op loop folds away and the
    // per-call figure reads as exactly zero.
    asm volatile("" : : "g"(&disabled) : "memory");
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double per_call = std::chrono::duration<double>(t1 - t0).count() /
                          static_cast<double>(kCalls);
  SCALPEL_REQUIRE(disabled.recorded() == 0,
                  "disabled tracer must not record");
  const double hook_cost = per_call * static_cast<double>(events);
  const double off_overhead = hook_cost / off * 100.0;

  std::printf("disabled record(): %.2f ns/call; %zu hook sites/run -> "
              "%.4f%% of the untraced wall time\n",
              per_call * 1e9, events, off_overhead);
  const bool hooks_pass = off_overhead < 2.0;
  std::printf("%s: tracing-off overhead %.4f%% %s 2%% budget\n",
              hooks_pass ? "PASS" : "FAIL", off_overhead,
              hooks_pass ? "<" : ">=");
  // The telemetry claim is gated the same way: steady-state per-sample cost
  // measured directly, scaled by the samples one run takes. A long loop
  // keeps row writes, ring wrap, cursor advance, and both burn windows on
  // the measured path. (The end-to-end diff in the table stays
  // informational with a loose backstop: wall-clock differences this small
  // swing by +/-2 points from allocator and code placement alone between
  // invocations, which would make a tight end-to-end gate flaky.)
  obs_recorder.clear();
  SloMonitor slo(&obs_recorder);
  slo.add(deadline_spec());
  EngineSample es;
  constexpr std::uint64_t kObsCalls = 500'000;
  const auto o0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kObsCalls; ++i) {
    es.time += 0.5;
    es.arrived += 250;
    es.completed += 240;
    es.deadline_met += 230;
    es.deadline_total += 240;
    es.in_flight = 42.0;
    es.queue_depth = 17.0;
    obs_recorder.sample(es);
    slo.evaluate();
  }
  const auto o1 = std::chrono::steady_clock::now();
  const double per_sample = std::chrono::duration<double>(o1 - o0).count() /
                            static_cast<double>(kObsCalls);
  const double steady_overhead =
      per_sample * static_cast<double>(samples) / off * 100.0;
  std::printf("sample+evaluate: %.0f ns/sample; %zu samples/run -> "
              "%.4f%% of the untraced wall time\n",
              per_sample * 1e9, samples, steady_overhead);

  const bool obs_pass = steady_overhead < 2.0;
  std::printf("%s: time-series + SLO steady-state overhead %.4f%% %s 2%% "
              "budget (%zu samples)\n",
              obs_pass ? "PASS" : "FAIL", steady_overhead,
              obs_pass ? "<" : ">=", samples);
  const bool e2e_pass = obs_overhead < 8.0;
  std::printf("%s: end-to-end telemetry diff %.2f%% %s 8%% regression "
              "backstop\n",
              e2e_pass ? "PASS" : "FAIL", obs_overhead,
              e2e_pass ? "<" : ">=");
  return hooks_pass && obs_pass && e2e_pass ? 0 : 1;
}
