// T1 — Model zoo characteristics: the DNN workloads of the evaluation, with
// the structural quantities surgery operates on (clean cuts, exit
// candidates, minimum-activation cut).

#include "bench_common.hpp"
#include "nn/models.hpp"
#include "surgery/exit_candidates.hpp"

using namespace scalpel;

int main() {
  bench::banner("T1", "Model zoo characteristics");
  Table t({"model", "layers", "GFLOPs", "Mparams", "input KB", "clean cuts",
           "exit candidates", "min act. KB", "min act. depth"});
  for (const auto& name : models::zoo_names()) {
    const auto g = models::by_name(name);
    const auto cuts = g.clean_cuts();
    std::size_t min_idx = 0;
    for (std::size_t i = 1; i < cuts.size(); ++i) {
      if (cuts[i].activation_bytes < cuts[min_idx].activation_bytes) {
        min_idx = i;
      }
    }
    ExitCandidateOptions opts;
    opts.num_classes = 10;
    const auto cands = find_exit_candidates(g, opts);
    const double min_depth =
        static_cast<double>(cuts[min_idx].prefix_flops) /
        static_cast<double>(g.total_flops());
    t.add_row({name, Table::num(static_cast<std::int64_t>(g.size())),
               Table::num(static_cast<double>(g.total_flops()) / 1e9, 2),
               Table::num(static_cast<double>(g.total_params()) / 1e6, 2),
               Table::num(static_cast<double>(g.node(0).out_shape.bytes()) /
                              1024.0,
                          1),
               Table::num(static_cast<std::int64_t>(cuts.size())),
               Table::num(static_cast<std::int64_t>(cands.size())),
               Table::num(static_cast<double>(cuts[min_idx].activation_bytes) /
                              1024.0,
                          1),
               Table::num(min_depth, 2)});
  }
  std::printf("%s\n", t.to_string().c_str());
  return 0;
}
