// F1 — Motivation: per-layer compute cost on a weak device vs an edge
// server, against the activation size that would have to cross the network
// at each clean cut. The classic Neurosurgeon figure: compute grows on the
// device while activations shrink with depth, so an intermediate cut beats
// both endpoints.

#include "bench_common.hpp"
#include "nn/models.hpp"
#include "profile/latency_model.hpp"

using namespace scalpel;

namespace {

void layerwise(const std::string& model_name) {
  const auto g = models::by_name(model_name);
  const auto device = profiles::raspberry_pi4();
  const auto server = profiles::edge_gpu_t4();
  const auto dev_prefix = LatencyModel::prefix(g, device);
  const auto srv_prefix = LatencyModel::prefix(g, server);

  std::printf("model: %s, device: %s, server: %s\n", model_name.c_str(),
              device.name.c_str(), server.name.c_str());
  Table t({"cut after", "layer", "depth %", "dev prefix ms", "srv suffix ms",
           "activation KB"});
  const auto cuts = g.clean_cuts();
  // Subsample deep models to keep the figure readable.
  const std::size_t stride = std::max<std::size_t>(1, cuts.size() / 16);
  for (std::size_t i = 0; i < cuts.size(); i += stride) {
    const auto& c = cuts[i];
    const double depth = 100.0 * static_cast<double>(c.prefix_flops) /
                         static_cast<double>(g.total_flops());
    t.add_row({Table::num(static_cast<std::int64_t>(c.after)),
               g.node(c.after).spec.name.empty()
                   ? layer_kind_name(g.node(c.after).spec.kind)
                   : g.node(c.after).spec.name,
               Table::num(depth, 1),
               Table::num(to_ms(dev_prefix[static_cast<std::size_t>(c.after)]),
                          2),
               Table::num(to_ms(srv_prefix.back() -
                                srv_prefix[static_cast<std::size_t>(c.after)]),
                          2),
               Table::num(static_cast<double>(c.activation_bytes) / 1024.0,
                          1)});
  }
  std::printf("%s\n", t.to_string().c_str());
}

}  // namespace

int main() {
  bench::banner("F1", "Per-layer cost vs activation size (why partition)");
  layerwise("vgg16");
  layerwise("mobilenet_v1");
  return 0;
}
