// F9 — Sensitivity to server heterogeneity: sweep the coefficient of
// variation of server speeds and compare joint vs the heterogeneity-blind
// baselines. The gap should widen with heterogeneity: allocation-aware
// assignment routes heavy streams to fast servers.

#include "bench_common.hpp"

using namespace scalpel;

int main() {
  bench::banner("F9", "Sensitivity to server heterogeneity (speed CoV)");
  Table t({"server CoV", "joint ms", "joint w/o exits ms", "neurosurgeon ms",
           "random ms", "exit gain"});
  for (double cov : {0.0, 0.25, 0.5, 0.75, 1.0, 1.25}) {
    clusters::CampusOptions copts;
    copts.num_devices = 12;
    copts.num_servers = 4;
    copts.server_speed_cov = cov;
    copts.seed = 23;
    const ProblemInstance instance(clusters::campus(copts));
    const auto joint = bench::run_scheme(instance, "joint");
    JointOptions ne = bench::joint_opts();
    ne.enable_exits = false;
    const auto no_exits = JointOptimizer(ne).optimize(instance);
    const auto ns = bench::run_scheme(instance, "neurosurgeon");
    const auto rnd = bench::run_scheme(instance, "random");
    std::string gain = "-";
    if (std::isfinite(no_exits.mean_latency) &&
        std::isfinite(joint.mean_latency)) {
      gain = Table::num(no_exits.mean_latency / joint.mean_latency, 2) + "x";
    }
    t.add_row({Table::num(cov, 2), bench::fmt_ms(joint.mean_latency),
               bench::fmt_ms(no_exits.mean_latency),
               bench::fmt_ms(ns.mean_latency),
               bench::fmt_ms(rnd.mean_latency), gain});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Expected shape: allocation-aware schemes stay stable across\n"
              "the sweep while heterogeneity-blind baselines destabilize;\n"
              "exits add a further constant-factor gain.\n");
  return 0;
}
