// F16 — Robustness under server churn: an exponential MTBF/MTTR fault
// process knocks edge servers out while inference traffic flows. Sweeps the
// churn rate (MTBF {40,20,10,5} s at MTTR 5 s) and compares the liveness-
// aware online controller against static decisions that never learn a
// server died. All schemes see the identical fault script and arrival seed,
// and run under the same bounded RetryOffload policy, so every gap in the
// table is attributable to (re)decision quality alone.

#include <limits>

#include "bench_common.hpp"
#include "core/online.hpp"
#include "util/rng.hpp"

using namespace scalpel;

namespace {

struct Row {
  std::string scheme;
  SimMetrics m;
  std::size_t failovers = 0;
};

Row run_scheme_under_faults(const ProblemInstance& instance,
                            const ClusterTopology& topo,
                            const std::string& scheme,
                            const FaultSchedule& schedule, double horizon) {
  const bool online = scheme == "online joint";
  const Decision initial =
      bench::run_scheme(instance, online ? "joint" : scheme);

  Simulator::Options opts;
  opts.horizon = horizon;
  opts.warmup = 5.0;
  opts.seed = 41;
  opts.faults.schedule = schedule;
  opts.faults.policy = FaultPolicy::RetryOffload;
  opts.faults.max_retries = 20;
  opts.faults.retry_backoff = 0.25;
  opts.faults.retry_timeout = 15.0;
  if (online) opts.control_interval = 1.0;

  Simulator sim(instance, initial, opts);
  OnlineController::Options copts;
  copts.hysteresis = 0.25;
  copts.joint = bench::joint_opts();
  OnlineController controller(topo, copts);
  if (online) {
    sim.set_controller([&](double, const std::vector<double>& bw,
                           const std::vector<bool>& alive)
                           -> std::optional<Decision> {
      if (controller.observe(bw, alive)) return controller.decision();
      return std::nullopt;
    });
  }
  return Row{scheme, sim.run(), online ? controller.failovers() : 0};
}

}  // namespace

int main() {
  bench::banner("F16", "Graceful degradation under server churn");
  const auto topo = clusters::small_lab();
  const ProblemInstance instance(topo);
  const double horizon = 120.0;
  const double mttr = 5.0;

  std::printf(
      "fault model: per-server exponential MTBF/MTTR renewal process,\n"
      "MTTR fixed at %.0f s; identical script + arrival seed per scheme;\n"
      "RetryOffload policy (<=20 retries, 0.25 s backoff, 15 s budget);\n"
      "failed deadline-bearing tasks count as deadline misses.\n\n",
      mttr);

  const std::vector<std::string> schemes = {"online joint", "joint",
                                            "neurosurgeon", "edge_only"};
  for (const double mtbf : {40.0, 20.0, 10.0, 5.0}) {
    const Rng fault_rng(7000 + static_cast<std::uint64_t>(mtbf));
    const auto schedule = FaultSchedule::exponential_servers(
        topo.servers().size(), mtbf, mttr, horizon, fault_rng);
    std::size_t outages = 0;
    for (const auto& ev : schedule.events()) outages += ev.up ? 0 : 1;
    double avail = 0.0;
    for (std::size_t s = 0; s < topo.servers().size(); ++s) {
      avail += schedule.server_availability(static_cast<std::int32_t>(s),
                                            horizon);
    }
    avail /= static_cast<double>(topo.servers().size());
    std::printf("-- MTBF %.0f s: %zu outages scripted, server availability "
                "%.3f --\n",
                mtbf, outages, avail);

    Table t({"scheme", "deadline sat.", "availability", "failed", "resteered",
             "retried", "p99 ms", "outage p99 ms", "failovers"});
    for (const auto& scheme : schemes) {
      const Row r =
          run_scheme_under_faults(instance, topo, scheme, schedule, horizon);
      t.add_row({r.scheme, Table::num(r.m.deadline_satisfaction, 3),
                 Table::num(r.m.availability, 3),
                 Table::num(static_cast<std::int64_t>(r.m.failed)),
                 Table::num(static_cast<std::int64_t>(r.m.resteered)),
                 Table::num(static_cast<std::int64_t>(r.m.retried)),
                 bench::fmt_ms(r.m.latency.p99()),
                 r.m.outage_latency.empty()
                     ? "-"
                     : bench::fmt_ms(r.m.outage_latency.p99()),
                 Table::num(static_cast<std::int64_t>(r.failovers))});
    }
    std::printf("%s\n", t.to_string().c_str());
  }

  std::printf(
      "Expected shape: static schemes bleed deadline satisfaction as MTBF\n"
      "shrinks — every outage strands their offloaded stream in the retry\n"
      "loop until the server returns. The liveness-aware online controller\n"
      "re-solves around dead servers (device fallback when both are down),\n"
      "holding strictly higher deadline satisfaction at every churn rate.\n");
  return 0;
}
