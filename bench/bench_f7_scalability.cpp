// F7 — Optimizer scalability: joint solve time / rounds / configurations
// examined as the cluster grows, plus the optimality gap against the
// exhaustive joint search on a tiny instance.

#include "bench_common.hpp"

using namespace scalpel;

int main() {
  bench::banner("F7", "Joint optimizer scalability and optimality gap");

  Table t({"devices", "servers", "solve s", "rounds", "surgery evals",
           "mean ms"});
  for (const auto& [nd, ns] : std::vector<std::pair<std::size_t, std::size_t>>{
           {4, 2}, {8, 2}, {16, 4}, {32, 4}, {64, 8}}) {
    clusters::CampusOptions copts;
    copts.num_devices = nd;
    copts.num_servers = ns;
    copts.mean_arrival_rate = 1.0;  // moderate load: scaling, not overload
    copts.seed = 13;
    const ProblemInstance instance(clusters::campus(copts));
    JointReport report;
    const auto d =
        JointOptimizer(bench::joint_opts()).optimize(instance, &report);
    t.add_row({Table::num(static_cast<std::int64_t>(nd)),
               Table::num(static_cast<std::int64_t>(ns)),
               Table::num(report.solve_seconds, 3),
               Table::num(static_cast<std::int64_t>(report.iterations)),
               Table::num(static_cast<std::int64_t>(
                   report.surgery_evaluations)),
               bench::fmt_ms(d.mean_latency)});
  }
  std::printf("%s\n", t.to_string().c_str());

  std::printf("Optimality gap vs exhaustive joint search (small lab, "
              "partition+assignment space):\n");
  const ProblemInstance lab(clusters::small_lab());
  const auto joint = bench::run_scheme(lab, "joint");
  const auto exact = baselines::small_exhaustive(lab);
  Table gap({"scheme", "mean ms"});
  gap.add_row({"joint (alternating)", bench::fmt_ms(joint.mean_latency)});
  gap.add_row({"exhaustive (partition x server, no exits)",
               bench::fmt_ms(exact.mean_latency)});
  std::printf("%s", gap.to_string().c_str());
  if (std::isfinite(exact.mean_latency)) {
    std::printf("gap: %.1f%%\n",
                100.0 * (joint.mean_latency / exact.mean_latency - 1.0));
  }
  std::printf("\nExpected shape: near-linear solve-time growth in devices.\n"
              "A negative gap is expected: the exhaustive reference searches\n"
              "a smaller space (no exits, equal bandwidth split), so the\n"
              "joint optimizer can legitimately beat it.\n");
  return 0;
}
