// F4 — Mean/p99 latency vs task arrival rate, all schemes, on the campus
// cluster. Analytical prediction plus replicated DES measurement (mean ±
// 95% CI over 8 seeds); unstable schemes are reported as such.

#include "bench_common.hpp"

using namespace scalpel;

int main() {
  bench::banner("F4", "Latency vs arrival rate (campus, all schemes)");
  const std::vector<std::string> schemes = {"device_only", "edge_only",
                                            "neurosurgeon", "local_multi_exit",
                                            "random", "joint"};
  Table t({"rate/dev", "scheme", "pred. mean ms", "DES mean ms (±95% CI)",
           "DES p99 ms (±95% CI)", "deadline sat."});
  for (double rate : {0.5, 1.0, 2.0, 4.0}) {
    clusters::CampusOptions copts;
    copts.num_devices = 12;
    copts.num_servers = 3;
    copts.mean_arrival_rate = rate;
    copts.seed = 7;
    const ProblemInstance instance(clusters::campus(copts));
    for (const auto& scheme : schemes) {
      const auto d = bench::run_scheme(instance, scheme);
      const auto m = bench::simulate_replicated(instance, d, 30.0);
      t.add_row({Table::num(rate, 1), scheme, bench::fmt_ms(d.mean_latency),
                 bench::fmt_mean_ci_ms(m.mean_latency),
                 bench::fmt_mean_ci_ms(m.p99_latency),
                 bench::fmt_mean_ci(m.deadline_satisfaction)});
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Expected shape: device/edge-only destabilize as load grows;\n"
              "joint stays stable longest and holds the lowest latency.\n");
  return 0;
}
