// F4 — Mean/p99 latency vs task arrival rate, all schemes, on the campus
// cluster. Analytical prediction plus DES measurement; unstable schemes are
// reported as such.

#include "bench_common.hpp"

using namespace scalpel;

int main() {
  bench::banner("F4", "Latency vs arrival rate (campus, all schemes)");
  const std::vector<std::string> schemes = {"device_only", "edge_only",
                                            "neurosurgeon", "local_multi_exit",
                                            "random", "joint"};
  Table t({"rate/dev", "scheme", "pred. mean ms", "DES mean ms", "DES p99 ms",
           "deadline sat."});
  for (double rate : {0.5, 1.0, 2.0, 4.0}) {
    clusters::CampusOptions copts;
    copts.num_devices = 12;
    copts.num_servers = 3;
    copts.mean_arrival_rate = rate;
    copts.seed = 7;
    const ProblemInstance instance(clusters::campus(copts));
    for (const auto& scheme : schemes) {
      const auto d = bench::run_scheme(instance, scheme);
      const auto m = bench::simulate(instance, d, 30.0);
      t.add_row({Table::num(rate, 1), scheme, bench::fmt_ms(d.mean_latency),
                 m.completed ? Table::num(to_ms(m.latency.mean()), 2) : "-",
                 m.completed ? Table::num(to_ms(m.latency.p99()), 2) : "-",
                 Table::num(m.deadline_satisfaction, 3)});
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Expected shape: device/edge-only destabilize as load grows;\n"
              "joint stays stable longest and holds the lowest latency.\n");
  return 0;
}
