// F17 — Deadline-aware overload control: offered load is swept through and
// past the saturation point of a fixed joint deployment, and a scripted
// burst-and-recover trace stresses the runtime controller. Compared schemes:
//   unprotected   — unbounded queues, no control (the seed behaviour)
//   shed-only     — bounded queues + deadline-expiry shedding, no controller
//   throttle-only — static admission gate from the cluster-level fixed-point
//                   throttle plan (full-accuracy plans, traffic refused)
//   ladder        — online controller walking a precomputed surgery-based
//                   degradation ladder, admission gate only as last resort
// All schemes see the identical arrival seed, so gaps are attributable to
// the overload policy alone. Shed/expired tasks count as deadline misses —
// nobody wins by dropping work.

#include <cstdio>
#include <optional>
#include <vector>

#include "bench_common.hpp"
#include "core/admission.hpp"
#include "core/online.hpp"

using namespace scalpel;

namespace {

struct Row {
  std::string scheme;
  SimMetrics m;
  std::size_t degradations = 0;
  std::size_t final_rung = 0;
};

OverloadOptions bounded_queues() {
  OverloadOptions o;
  o.policy = OverloadPolicy::ShedExpired;
  o.device_queue_limit = 32;
  o.upload_queue_limit = 8;
  o.server_queue_limit = 8;
  return o;
}

OnlineController::Options controller_opts() {
  OnlineController::Options o;
  o.joint = bench::joint_opts();
  o.overload.ladder.rungs = 4;
  o.overload.ladder.accuracy_step = 0.05;
  o.overload.trigger_windows = 2;
  o.overload.recovery_windows = 3;
  // One-second observation windows put Poisson noise on the offered-rate
  // estimate; 0.8 keeps recovery responsive without letting single noisy
  // windows break the calm streak.
  o.overload.recover_margin = 0.8;
  return o;
}

Simulator::Options base_sim(double horizon) {
  Simulator::Options o;
  o.horizon = horizon;
  o.warmup = 10.0;
  o.seed = 17;
  return o;
}

Row run_scheme(const ProblemInstance& instance, const Decision& d,
               const ClusterTopology& deployed_topo,
               const std::string& scheme, Simulator::Options opts) {
  if (scheme == "shed-only") {
    opts.overload = bounded_queues();
    return {scheme, Simulator(instance, d, opts).run()};
  }
  if (scheme == "throttle-only") {
    const auto plan = admission::propose_throttle_fixed_point(instance, d,
                                                              0.9);
    std::vector<double> gate;
    const auto& topo = instance.topology();
    for (std::size_t i = 0; i < plan.admitted_rate.size(); ++i) {
      const double offered =
          topo.device(static_cast<DeviceId>(i)).arrival_rate;
      gate.push_back(std::min(1.0, plan.admitted_rate[i] / offered));
    }
    Simulator sim(instance, d, opts);
    sim.set_admission(gate);
    return {scheme, sim.run()};
  }
  if (scheme == "ladder") {
    opts.overload = bounded_queues();
    opts.control_interval = 1.0;
    // The controller is anchored to the *deployed* (nominal-rate) topology:
    // it never re-solves for the swept load, so its whole advantage over
    // the static baselines is the ladder + last-resort gate.
    OnlineController ctl(deployed_topo, controller_opts());
    Simulator sim(instance, ctl.decision(), opts);
    sim.set_controller([&](double, const std::vector<double>& bw,
                           const std::vector<bool>& alive,
                           const std::vector<double>& offered,
                           const std::vector<double>& depth) {
      ControlAction a;
      if (ctl.observe(bw, alive, offered, depth)) {
        a.decision = ctl.decision();
        a.admit_fraction = ctl.admit_fraction();
      }
      return a;
    });
    Row r{scheme, sim.run()};
    r.degradations = ctl.degradations();
    r.final_rung = ctl.current_rung();
    return r;
  }
  return {scheme, Simulator(instance, d, opts).run()};  // unprotected
}

void print_ladder_profile(const ProblemInstance& instance,
                          const Decision& d) {
  const auto ladder =
      build_degradation_ladder(instance, d, controller_opts().overload.ladder,
                               bench::joint_opts());
  std::printf("degradation ladder of the joint plan (capacity = min over "
              "devices of rung/base sustainable rate):\n");
  Table t({"rung", "accuracy floor", "predicted accuracy", "capacity x",
           "quantized uploads"});
  for (std::size_t k = 0; k < ladder.size(); ++k) {
    double capacity_x = 1e9;
    bool quantized = false;
    for (std::size_t i = 0; i < ladder[k].plans.size(); ++i) {
      if (ladder[0].sustainable[i] > 0.0 &&
          std::isfinite(ladder[0].sustainable[i])) {
        capacity_x = std::min(capacity_x, ladder[k].sustainable[i] /
                                              ladder[0].sustainable[i]);
      }
      quantized = quantized || ladder[k].plans[i].quantize_upload;
    }
    t.add_row({Table::num(static_cast<std::int64_t>(k)),
               Table::num(ladder[k].accuracy_floor, 3),
               Table::num(ladder[k].predicted_accuracy, 3),
               Table::num(capacity_x, 2), quantized ? "yes" : "no"});
  }
  std::printf("%s\n", t.to_string().c_str());
}

}  // namespace

int main() {
  bench::banner("F17", "Overload control: load sweep and burst recovery");
  const auto base_topo = clusters::small_lab();
  const ProblemInstance base_instance(base_topo);
  const Decision base_d = bench::run_scheme(base_instance, "joint");

  // Saturation: the load multiplier at which the most loaded device hits
  // its sustainable rate under the (fixed) joint deployment.
  double sat = 1e9;
  for (std::size_t i = 0; i < base_d.per_device.size(); ++i) {
    const double s = admission::max_sustainable_rate(
        base_instance, static_cast<DeviceId>(i), base_d.per_device[i], 1.0);
    const double rate =
        base_topo.device(static_cast<DeviceId>(i)).arrival_rate;
    if (std::isfinite(s)) sat = std::min(sat, s / rate);
  }
  std::printf("saturation multiplier of the base joint plan: %.2fx the lab's "
              "nominal offered load\n\n",
              sat);

  print_ladder_profile(base_instance, base_d);

  const std::vector<std::string> schemes = {"unprotected", "shed-only",
                                            "throttle-only", "ladder"};
  std::printf("-- offered-load sweep (multiples of saturation; deadline\n"
              "   satisfaction counts shed/expired tasks as misses) --\n");
  for (const double mult : {0.8, 1.0, 1.2, 1.5, 2.0}) {
    ClusterTopology topo = base_topo;
    for (const auto& dev : base_topo.devices()) {
      topo.set_device_arrival_rate(dev.id,
                                   dev.arrival_rate * mult * sat);
    }
    const ProblemInstance instance(topo);
    Decision d;
    d.scheme = base_d.scheme;
    d.per_device = base_d.per_device;
    evaluate_decision(instance, d);

    std::printf("load %.1fx saturation:\n", mult);
    Table t({"scheme", "deadline sat.", "accuracy", "completed", "shed",
             "expired", "p99 ms", "rung@end"});
    for (const auto& scheme : schemes) {
      const Row r =
          run_scheme(instance, d, base_topo, scheme, base_sim(120.0));
      t.add_row({r.scheme, Table::num(r.m.deadline_satisfaction, 3),
                 Table::num(r.m.measured_accuracy, 3),
                 Table::num(static_cast<std::int64_t>(r.m.completed)),
                 Table::num(static_cast<std::int64_t>(r.m.shed)),
                 Table::num(static_cast<std::int64_t>(r.m.expired)),
                 bench::fmt_ms(r.m.latency.p99()),
                 scheme == "ladder"
                     ? Table::num(static_cast<std::int64_t>(r.final_rung))
                     : "-"});
    }
    std::printf("%s\n", t.to_string().c_str());
  }

  // Burst-and-recover: calm at 0.5x saturation, a 4x burst (2x saturation)
  // for 30 s, then calm again. The ladder must absorb the burst by
  // degrading and walk all the way back to the base plan afterwards.
  std::printf("-- burst-and-recover trace (0.5x saturation, 4x burst over\n"
              "   t in [40, 70) s, horizon 140 s) --\n");
  ClusterTopology topo = base_topo;
  for (const auto& dev : base_topo.devices()) {
    topo.set_device_arrival_rate(dev.id, dev.arrival_rate * 0.5 * sat);
  }
  const ProblemInstance instance(topo);
  Decision d;
  d.scheme = base_d.scheme;
  d.per_device = base_d.per_device;
  evaluate_decision(instance, d);

  auto opts = base_sim(140.0);
  opts.rate_bursts.push_back(RateBurst{40.0, 70.0, 4.0});
  opts.series_window = 10.0;
  opts.overload = bounded_queues();
  opts.control_interval = 1.0;

  OnlineController ctl(topo, controller_opts());
  Simulator sim(instance, ctl.decision(), opts);
  std::vector<std::pair<double, std::size_t>> rung_trace;
  sim.set_controller([&](double now, const std::vector<double>& bw,
                         const std::vector<bool>& alive,
                         const std::vector<double>& offered,
                         const std::vector<double>& depth) {
    ControlAction a;
    const bool changed = ctl.observe(bw, alive, offered, depth);
    if (rung_trace.empty() || rung_trace.back().second != ctl.current_rung()) {
      rung_trace.emplace_back(now, ctl.current_rung());
    }
    if (changed) {
      a.decision = ctl.decision();
      a.admit_fraction = ctl.admit_fraction();
    }
    return a;
  });
  const SimMetrics m = sim.run();

  std::printf("rung timeline (time s -> rung): ");
  for (const auto& [t, r] : rung_trace) std::printf(" %.0f->%zu", t, r);
  std::printf("\n");
  std::printf("degradations %zu, recoveries %zu, throttle activations %zu, "
              "final rung %zu, gate %s\n",
              ctl.degradations(), ctl.recoveries(),
              ctl.throttle_activations(), ctl.current_rung(),
              ctl.admit_fraction().empty() ? "open" : "engaged");
  std::printf("run: deadline sat %.3f, accuracy %.3f, shed %zu, expired "
              "%zu\n\n",
              m.deadline_satisfaction, m.measured_accuracy, m.shed,
              m.expired);

  Table ts({"window start s", "in flight", "completions/s", "accuracy",
            "shed/s"});
  for (std::size_t w = 0; w < m.series.tasks_in_flight.size(); ++w) {
    ts.add_row({Table::num(static_cast<std::int64_t>(
                    static_cast<double>(w) * m.series.window)),
                Table::num(m.series.tasks_in_flight[w], 1),
                Table::num(m.series.completion_rate[w], 1),
                Table::num(m.series.mean_accuracy[w], 3),
                Table::num(m.series.shed_rate[w], 1)});
  }
  std::printf("%s\n", ts.to_string().c_str());

  std::printf(
      "Expected shape: past saturation the unprotected queues blow up (p99\n"
      "explodes, satisfaction collapses); shed-only keeps latency bounded\n"
      "but pays every dropped task as a miss; throttle-only refuses a fixed\n"
      "slice at full accuracy. The ladder first buys capacity with cheaper\n"
      "surgery plans (accuracy steps down the table above, monotonically)\n"
      "and only then sheds, so it holds the highest deadline satisfaction\n"
      "at and past saturation. Through the burst the rung timeline walks\n"
      "down, the accuracy column dips, and both recover to the base plan\n"
      "after the burst clears.\n");
  return 0;
}
