// F12 — Device energy per task across schemes: offloading trades device
// compute energy (dominant on weak devices) for transmit + idle energy.
// The joint scheme should sit near the energy-efficient frontier as a side
// effect of minimizing latency (less device compute, short uploads).

#include "bench_common.hpp"

using namespace scalpel;

int main() {
  bench::banner("F12", "Device energy per task across schemes");
  clusters::CampusOptions copts;
  copts.num_devices = 12;
  copts.num_servers = 3;
  copts.seed = 29;
  const ProblemInstance instance(clusters::campus(copts));

  Table t({"scheme", "DES mean ms (±95% CI)", "energy mJ/task (±95% CI)",
           "offload frac."});
  const std::vector<std::string> schemes = {"device_only", "edge_only",
                                            "neurosurgeon",
                                            "local_multi_exit", "joint"};
  for (const auto& scheme : schemes) {
    const auto d = bench::run_scheme(instance, scheme);
    const auto m = bench::simulate_replicated(instance, d, 30.0);
    const Summary energy = summarize(m.task_energy);
    t.add_row({scheme, bench::fmt_mean_ci_ms(m.mean_latency),
               Table::mean_ci(energy.mean * 1e3, energy.ci95 * 1e3, 1),
               bench::fmt_mean_ci(m.offload_fraction, 2)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Expected shape: device-only burns the most device energy on\n"
              "weak hardware; offloading schemes trade it for tx+idle;\n"
              "joint's exits keep both compute and transmit energy low.\n");
  return 0;
}
