// F19 — Partition-tolerant distributed control: per-cell controllers and a
// global coordinator exchange typed messages over a deterministic faulty
// fabric (delay / jitter / loss), with epoch-numbered grants, bounded-
// staleness pricing, and coordinator-loss local autonomy.
//
// Part 1 sweeps fabric quality on a static workload and reports rounds-to-
// converge plus the optimality gap of the merged distributed plan against a
// centralized joint solve given the *same* optimizer budget. Part 2 runs the
// DES under data-plane server churn while the coordinator itself crashes on
// an exponential MTBF/MTTR process, and compares deadline satisfaction
// against a frozen centralized plan that never reacts. The harshest point
// re-runs on the cell-sharded engine and must match the single loop
// bit-for-bit — the whole plane lives behind the ObservingController seam.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/objective.hpp"
#include "ctrl/plane.hpp"
#include "sim/shard.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

using namespace scalpel;

namespace {

ProblemInstance campus_instance() {
  clusters::CampusOptions copts;
  copts.num_devices = 8;
  copts.num_servers = 3;
  copts.devices_per_cell = 2;
  copts.seed = 7;
  return ProblemInstance(clusters::campus(copts));
}

Observation observe_static(double t, const ClusterTopology& topo) {
  Observation o;
  o.time = t;
  for (const auto& cell : topo.cells()) o.cell_bandwidth.push_back(cell.bandwidth);
  o.server_alive.assign(topo.servers().size(), true);
  return o;
}

/// Cheap local-solver budget for the DES sweep (cells re-solve on liveness
/// flips mid-run; Part 1 uses the full bench budget for a fair gap).
JointOptions light_opts() {
  JointOptions o;
  o.max_iterations = 2;
  o.dp_coverage_bins = 40;
  o.theta_grid = {0.0, 0.3, 0.6};
  return o;
}

struct FabricPoint {
  std::string name;
  ControlFabricOptions fabric;
};

struct DesRow {
  SimMetrics m;
  std::uint64_t local_solves = 0;
  std::uint64_t coordinator_losses = 0;
  std::uint64_t rejoins = 0;
  std::uint64_t stale_events = 0;
  std::uint64_t dead_letters = 0;
  std::uint64_t plan_changes = 0;
  std::uint64_t coordinator_crashes = 0;
};

DistributedPlaneOptions plane_opts(const ControlFabricOptions& fabric,
                                   const JointOptions& joint,
                                   FaultSchedule controller_faults) {
  DistributedPlaneOptions po;
  po.fabric = fabric;
  po.cell.joint = joint;
  po.controller_faults = std::move(controller_faults);
  po.seed = 19;
  return po;
}

Simulator::Options des_opts(double horizon, const FaultSchedule& data_faults) {
  Simulator::Options o;
  o.horizon = horizon;
  o.warmup = 4.0;
  o.seed = 23;
  o.control_interval = 1.0;
  o.faults.schedule = data_faults;
  o.faults.policy = FaultPolicy::RetryOffload;
  o.faults.max_retries = 20;
  o.faults.retry_backoff = 0.25;
  o.faults.retry_timeout = 15.0;
  return o;
}

}  // namespace

int main() {
  bench::banner("F19", "Distributed control over a faulty fabric");
  const ProblemInstance instance = campus_instance();
  const auto& topo = instance.topology();
  const std::size_t num_cells = topo.cells().size();

  Decision central = bench::run_scheme(instance, "joint");
  evaluate_decision(instance, central);
  std::printf(
      "topology: %zu devices / %zu servers / %zu cells; centralized joint\n"
      "solve mean latency %s (the gap reference; identical optimizer budget\n"
      "for the cells' local solves).\n\n",
      topo.devices().size(), topo.servers().size(), num_cells,
      bench::fmt_ms(central.mean_latency).c_str());

  // --- Part 1: convergence + optimality gap vs fabric quality -------------
  std::printf(
      "-- Part 1: static workload, 40 control ticks; damped tatonnement\n"
      "   (alpha 0.5) with epoch-numbered grants; merged plan re-evaluated\n"
      "   on the full instance --\n");
  const std::vector<FabricPoint> fabrics = {
      {"clean", {0.0, 0.0, 0.0}},
      {"mild", {0.2, 0.5, 0.05}},
      {"harsh", {0.4, 1.0, 0.20}},
      {"brutal", {0.5, 2.0, 0.40}},
  };
  Table t1({"fabric", "delay s", "jitter s", "drop", "rounds", "epoch",
            "converged@tick", "msgs lost", "stale evts", "gap"});
  double clean_gap = 1.0;
  bool clean_converged = false;
  for (const auto& fp : fabrics) {
    DistributedControlPlane plane(
        topo, plane_opts(fp.fabric, bench::joint_opts(), {}));
    double converged_at = -1.0;
    for (int t = 0; t < 40; ++t) {
      (void)plane.tick(observe_static(static_cast<double>(t), topo));
      if (converged_at < 0.0 && plane.converged())
        converged_at = static_cast<double>(t);
    }
    Decision merged = plane.merged();
    evaluate_decision(instance, merged);
    const double gap = merged.mean_latency / central.mean_latency - 1.0;
    if (fp.name == "clean") {
      clean_gap = gap;
      clean_converged = plane.converged();
    }
    t1.add_row({fp.name, Table::num(fp.fabric.delay, 1),
                Table::num(fp.fabric.jitter, 1),
                Table::num(fp.fabric.drop_prob, 2),
                Table::num(static_cast<std::int64_t>(
                    plane.coordinator().realloc_rounds())),
                Table::num(static_cast<std::int64_t>(plane.coordinator().epoch())),
                converged_at < 0.0 ? "-" : Table::num(converged_at, 0),
                Table::num(static_cast<std::int64_t>(plane.fabric().dropped())),
                Table::num(static_cast<std::int64_t>(plane.stale_events())),
                Table::num(100.0 * gap, 2) + "%"});
  }
  std::printf("%s\n", t1.to_string().c_str());
  SCALPEL_REQUIRE(clean_converged,
                  "F19: the plane must converge on a clean fabric");
  SCALPEL_REQUIRE(clean_gap <= 0.05,
                  "F19: clean-fabric optimality gap above 5%");

  // --- Part 2: deadline satisfaction while the coordinator crashes --------
  const double horizon = 60.0;
  const Rng data_rng(9100);
  const auto data_faults = FaultSchedule::exponential_servers(
      topo.servers().size(), 15.0, 5.0, horizon, data_rng);
  std::printf(
      "-- Part 2: DES, %.0f s horizon; data-plane server churn (MTBF 15 s /\n"
      "   MTTR 5 s, RetryOffload) identical for every scheme; the\n"
      "   coordinator endpoint crashes on its own MTBF/MTTR 4 s process --\n",
      horizon);

  const Simulator::Options frozen_opts = des_opts(horizon, data_faults);
  Simulator frozen_sim(instance, central, frozen_opts);
  const SimMetrics frozen = frozen_sim.run();
  std::printf(
      "frozen centralized plan: deadline sat %.3f, failed %zu, retried %zu\n\n",
      frozen.deadline_satisfaction, frozen.failed, frozen.retried);

  const ControlFabricOptions mild{0.2, 0.5, 0.05};
  Table t2({"coord MTBF", "deadline sat.", "frozen", "failed", "resteered",
            "coord down", "losses", "rejoins", "local solves", "stale",
            "dead letters"});
  const std::vector<double> mtbfs = {0.0, 20.0, 10.0, 5.0};  // 0 = no faults
  DesRow harshest;
  for (const double mtbf : mtbfs) {
    FaultSchedule coord_faults;
    if (mtbf > 0.0) {
      const Rng coord_rng(7100 + static_cast<std::uint64_t>(mtbf));
      coord_faults =
          FaultSchedule::exponential_servers(1, mtbf, 4.0, horizon, coord_rng);
    }
    DistributedControlPlane plane(
        topo, plane_opts(mild, light_opts(), coord_faults));
    Simulator sim(instance, central, des_opts(horizon, data_faults));
    sim.set_controller(plane.callback());
    DesRow r;
    r.m = sim.run();
    r.local_solves = plane.local_solves();
    r.coordinator_losses = plane.coordinator_losses();
    r.rejoins = plane.rejoins();
    r.stale_events = plane.stale_events();
    r.dead_letters = plane.dead_letters();
    r.plan_changes = plane.plan_changes();
    r.coordinator_crashes = plane.coordinator_crashes();
    if (mtbf == 5.0) harshest = r;
    t2.add_row({mtbf > 0.0 ? Table::num(mtbf, 0) + " s" : "no faults",
                Table::num(r.m.deadline_satisfaction, 3),
                Table::num(frozen.deadline_satisfaction, 3),
                Table::num(static_cast<std::int64_t>(r.m.failed)),
                Table::num(static_cast<std::int64_t>(r.m.resteered)),
                Table::num(static_cast<std::int64_t>(r.coordinator_crashes)),
                Table::num(static_cast<std::int64_t>(r.coordinator_losses)),
                Table::num(static_cast<std::int64_t>(r.rejoins)),
                Table::num(static_cast<std::int64_t>(r.local_solves)),
                Table::num(static_cast<std::int64_t>(r.stale_events)),
                Table::num(static_cast<std::int64_t>(r.dead_letters))});
    SCALPEL_REQUIRE(
        r.m.deadline_satisfaction > frozen.deadline_satisfaction,
        "F19: distributed control must beat the frozen plan at every "
        "coordinator MTBF");
  }
  std::printf("%s\n", t2.to_string().c_str());

  // --- Sharded-engine bit-identity at the harshest point ------------------
  {
    const Rng coord_rng(7100 + 5);
    const auto coord_faults =
        FaultSchedule::exponential_servers(1, 5.0, 4.0, horizon, coord_rng);
    DistributedControlPlane plane(
        topo, plane_opts(mild, light_opts(), coord_faults));
    ShardOptions so;
    so.shards = 4;
    so.threads = 2;
    ShardedSimulator sharded(instance, central, des_opts(horizon, data_faults),
                             so);
    sharded.set_controller(plane.callback());
    const SimMetrics sm = sharded.run();
    SCALPEL_REQUIRE(sm.completed == harshest.m.completed &&
                        sm.failed == harshest.m.failed &&
                        sm.deadline_satisfaction ==
                            harshest.m.deadline_satisfaction,
                    "F19: sharded engine diverged from the single loop");
    SCALPEL_REQUIRE(plane.local_solves() == harshest.local_solves &&
                        plane.coordinator_losses() ==
                            harshest.coordinator_losses &&
                        plane.rejoins() == harshest.rejoins &&
                        plane.plan_changes() == harshest.plan_changes,
                    "F19: control-plane counters diverged on the sharded "
                    "engine");
    std::printf(
        "sharded engine (4 shards x 2 threads) replayed the harshest point\n"
        "bit-identically: deadline sat %.3f, %zu completed, %llu local "
        "solves.\n\n",
        sm.deadline_satisfaction, sm.completed,
        static_cast<unsigned long long>(plane.local_solves()));
  }

  std::printf(
      "Expected shape: tatonnement rounds grow with fabric loss but the gap\n"
      "stays small — lost grants are repaired by anti-entropy re-grants and\n"
      "stale slices are priced conservatively, never trusted fully. Under\n"
      "coordinator churn the cells drop into validated local autonomy (the\n"
      "losses/rejoins columns) and keep re-solving around dead servers, so\n"
      "deadline satisfaction stays strictly above the frozen plan at every\n"
      "MTBF; the fabric, epochs and crashes replay bit-identically on the\n"
      "sharded engine.\n");
  return 0;
}
