// F13 (extension) — INT8-quantized uploads as an extra surgery dimension:
// latency vs bandwidth with and without quantization, plus the accuracy
// cost. Quantization should matter most where the uplink is the bottleneck.

#include "bench_common.hpp"

using namespace scalpel;

namespace {

ClusterTopology lab_with_bandwidth(double bandwidth) {
  auto topo = clusters::small_lab();
  topo.set_cell_bandwidth(0, bandwidth);
  return topo;
}

}  // namespace

int main() {
  bench::banner("F13", "INT8 upload quantization (extension)");
  Table t({"cell Mbps", "joint ms", "joint+int8 ms", "gain", "acc plain",
           "acc int8", "int8 plans"});
  for (double mb : {10.0, 20.0, 40.0, 80.0, 160.0}) {
    const ProblemInstance instance(lab_with_bandwidth(mbps(mb)));
    JointOptions plain = bench::joint_opts();
    JointOptions quant = bench::joint_opts();
    quant.enable_quantized_upload = true;
    const auto d_plain = JointOptimizer(plain).optimize(instance);
    const auto d_quant = JointOptimizer(quant).optimize(instance);
    double acc_plain = 0.0;
    double acc_quant = 0.0;
    std::size_t quantized_plans = 0;
    for (std::size_t i = 0; i < d_plain.predicted.size(); ++i) {
      acc_plain += d_plain.predicted[i].expected_accuracy;
      acc_quant += d_quant.predicted[i].expected_accuracy;
      if (d_quant.per_device[i].plan.quantize_upload) ++quantized_plans;
    }
    acc_plain /= static_cast<double>(d_plain.predicted.size());
    acc_quant /= static_cast<double>(d_quant.predicted.size());
    std::string gain = "-";
    if (std::isfinite(d_plain.mean_latency) &&
        std::isfinite(d_quant.mean_latency)) {
      gain = Table::num(d_plain.mean_latency / d_quant.mean_latency, 2) + "x";
    }
    t.add_row({Table::num(mb, 0), bench::fmt_ms(d_plain.mean_latency),
               bench::fmt_ms(d_quant.mean_latency), gain,
               Table::num(acc_plain, 3), Table::num(acc_quant, 3),
               Table::num(static_cast<std::int64_t>(quantized_plans))});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Expected shape: the gain shrinks toward 1.0x as bandwidth\n"
              "grows; the accuracy cost stays below the per-device floors.\n");
  return 0;
}
