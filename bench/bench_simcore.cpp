// BENCH_simcore — the tracked perf scoreboard of the simulator inner loop
// and the joint solver (see EXPERIMENTS.md, "P1 simcore perf").
//
//   bench_simcore                         print the report
//   bench_simcore --json FILE             also write it to FILE
//   bench_simcore --check BASELINE        gate against a committed baseline
//   bench_simcore --tolerance 0.15        gate tolerance (default +15%)
//   bench_simcore --queue binary_heap     time the reference heap queue
//   bench_simcore --scale 0.25            shrink the horizon (quick look;
//                                         NOT comparable to the baseline)
//   bench_simcore --shards 8              shard count for the sharded
//                                         section (0 drops the section)
//   bench_simcore --sweep 1000000         metro-scale sweep up to N devices
//                                         through the sharded engine
//   bench_simcore --inject-slowdown 1.0   gate self-test: spin 1x extra
//
// Exit status: 0 on success/gate pass, 1 on gate fail, 2 on usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "perf/baseline.hpp"
#include "perf/build_info.hpp"
#include "perf/simcore_bench.hpp"
#include "util/flags.hpp"

namespace {

using scalpel::Json;
namespace perf = scalpel::perf;

// Strict numeric parsing (util/flags.hpp): garbage, negatives, and trailing
// junk exit 2 with the offending token instead of atoi()-ing to 0.
std::uint64_t parse_size_or_die(const std::string& flag, const char* text,
                                std::uint64_t min_value,
                                std::uint64_t max_value) {
  std::uint64_t value = 0;
  std::string err;
  if (!scalpel::flags::parse_size(text, min_value, max_value, &value, &err)) {
    std::fprintf(stderr, "bench_simcore: %s: %s\n", flag.c_str(), err.c_str());
    std::exit(2);
  }
  return value;
}

double parse_double_or_die(const std::string& flag, const char* text,
                           double min_value, double max_value) {
  double value = 0.0;
  std::string err;
  if (!scalpel::flags::parse_double(text, min_value, max_value, &value,
                                    &err)) {
    std::fprintf(stderr, "bench_simcore: %s: %s\n", flag.c_str(), err.c_str());
    std::exit(2);
  }
  return value;
}

Json load_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_simcore: cannot read %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return Json::parse(buf.str());
}

}  // namespace

int main(int argc, char** argv) {
  perf::SimcoreBenchConfig config;
  std::string json_path;
  std::string baseline_path;
  double tolerance = 0.15;
  double scale = 1.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_simcore: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") {
      json_path = next();
    } else if (arg == "--check") {
      baseline_path = next();
    } else if (arg == "--tolerance") {
      tolerance = parse_double_or_die(arg, next(), 1e-9, 100.0);
    } else if (arg == "--reps") {
      config.des_reps = static_cast<std::size_t>(
          parse_size_or_die(arg, next(), 1, 1u << 20));
    } else if (arg == "--scale") {
      scale = parse_double_or_die(arg, next(), 1e-9, 1e6);
    } else if (arg == "--queue") {
      const std::string q = next();
      if (q == "calendar") {
        config.event_queue = scalpel::EventQueueImpl::kCalendar;
      } else if (q == "binary_heap") {
        config.event_queue = scalpel::EventQueueImpl::kBinaryHeap;
      } else {
        std::fprintf(stderr, "bench_simcore: unknown queue %s\n", q.c_str());
        return 2;
      }
    } else if (arg == "--shards") {
      config.shards = static_cast<std::size_t>(
          parse_size_or_die(arg, next(), 0, 4096));
    } else if (arg == "--sweep") {
      config.sweep_max_devices = static_cast<std::size_t>(
          parse_size_or_die(arg, next(), 1, 1u << 30));
    } else if (arg == "--inject-slowdown") {
      config.inject_slowdown = parse_double_or_die(arg, next(), 0.0, 1e3);
    } else {
      std::fprintf(stderr, "bench_simcore: unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (scale != 1.0) {
    if (scale <= 0.0) {
      std::fprintf(stderr, "bench_simcore: --scale must be positive\n");
      return 2;
    }
    config.horizon *= scale;
    config.warmup *= scale;
    config.sweep_horizon *= scale;
  }

  if (!perf::timing_trustworthy()) {
    std::fprintf(stderr,
                 "bench_simcore: WARNING — unoptimized or sanitizer build; "
                 "timings below are NOT comparable to the baseline and the "
                 "report is flagged \"unoptimized\": true\n");
  }

  const Json report = perf::run_simcore_bench(config);
  std::printf("%s\n", report.dump_pretty().c_str());

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "bench_simcore: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
    out << report.dump_pretty() << "\n";
  }

  if (!baseline_path.empty()) {
    const Json baseline = load_json(baseline_path);
    const perf::GateResult gate =
        perf::check_regression(baseline, report, tolerance);
    std::printf("gate: %s\n", gate.message.c_str());
    return gate.passed ? 0 : 1;
  }
  return 0;
}
