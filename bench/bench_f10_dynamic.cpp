// F10 — Online adaptation under bandwidth dynamics: a Gilbert (good/bad)
// uplink trace drives the DES; the static joint decision is compared with
// the hysteresis-gated online controller re-optimizing as conditions drift.

#include "bench_common.hpp"
#include "core/online.hpp"
#include "util/rng.hpp"

using namespace scalpel;

int main() {
  bench::banner("F10", "Online adaptation under bandwidth dynamics");
  const auto topo = clusters::small_lab();
  const ProblemInstance instance(topo);
  const double good = topo.cell(0).bandwidth;

  Rng rng(31);
  const auto trace =
      BandwidthTrace::gilbert(good, mbps(18.0), 20.0, 12.0, 120.0, rng);
  std::printf("trace: Gilbert good=%.0f Mbps / bad=%.0f Mbps, mean hold "
              "20s/12s, horizon 120s, %zu transitions\n\n",
              good * 8 / 1e6, 18.0, trace.segments().size());

  const auto static_decision = bench::run_scheme(instance, "joint");

  auto run = [&](bool adaptive) {
    Simulator::Options opts;
    opts.horizon = 120.0;
    opts.warmup = 5.0;
    opts.seed = 37;
    if (adaptive) opts.control_interval = 5.0;
    Simulator sim(instance, static_decision, opts);
    sim.set_cell_trace(0, trace);
    std::size_t reopts = 0;
    OnlineController::Options copts;
    copts.hysteresis = 0.25;
    copts.joint = bench::joint_opts();
    OnlineController controller(topo, copts);
    if (adaptive) {
      sim.set_controller([&](double, const std::vector<double>& bw,
                             const std::vector<bool>& alive)
                             -> std::optional<Decision> {
        if (controller.observe(bw, alive)) {
          ++reopts;
          return controller.decision();
        }
        return std::nullopt;
      });
    }
    auto m = sim.run();
    return std::make_pair(m, reopts);
  };

  const auto [static_m, r0] = run(false);
  const auto [adaptive_m, r1] = run(true);

  Table t({"scheme", "mean ms", "p95 ms", "p99 ms", "deadline sat.",
           "re-optimizations"});
  t.add_row({"static joint", Table::num(to_ms(static_m.latency.mean()), 2),
             Table::num(to_ms(static_m.latency.p95()), 2),
             Table::num(to_ms(static_m.latency.p99()), 2),
             Table::num(static_m.deadline_satisfaction, 3), "0"});
  t.add_row({"online (hysteresis 25%)",
             Table::num(to_ms(adaptive_m.latency.mean()), 2),
             Table::num(to_ms(adaptive_m.latency.p95()), 2),
             Table::num(to_ms(adaptive_m.latency.p99()), 2),
             Table::num(adaptive_m.deadline_satisfaction, 3),
             Table::num(static_cast<std::int64_t>(r1))});
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Expected shape: comparable means, but the online controller\n"
              "cuts the tail (p95/p99) and deadline misses during bad-state\n"
              "episodes by re-cutting models deeper.\n");
  return 0;
}
