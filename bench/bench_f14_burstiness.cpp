// F14 (extension) — Robustness to traffic burstiness: the optimizer plans
// against Poisson arrivals; the DES injects Markov-modulated bursts and
// measures how gracefully the decision degrades versus the baselines.

#include "bench_common.hpp"

using namespace scalpel;

int main() {
  bench::banner("F14", "Robustness to bursty (MMPP) arrivals");
  clusters::CampusOptions copts;
  copts.num_devices = 12;
  copts.num_servers = 3;
  copts.seed = 7;
  const ProblemInstance instance(clusters::campus(copts));
  const auto joint = bench::run_scheme(instance, "joint");
  const auto ns = bench::run_scheme(instance, "neurosurgeon");

  Table t({"burst factor", "scheme", "DES mean ms", "DES p99 ms",
           "deadline sat."});
  struct Row {
    const char* name;
    const Decision* decision;
  };
  const std::vector<Row> schemes = {{"joint", &joint},
                                    {"neurosurgeon", &ns}};
  for (double burst : {0.0, 0.3, 0.6, 0.9}) {
    for (const auto& row : schemes) {
      Simulator::Options opts;
      opts.horizon = 40.0;
      opts.warmup = 4.0;
      opts.seed = 3;
      opts.burst_factor = burst;
      Simulator sim(instance, *row.decision, opts);
      const auto m = sim.run();
      t.add_row({Table::num(burst, 1), row.name,
                 m.completed ? Table::num(to_ms(m.latency.mean()), 1) : "-",
                 m.completed ? Table::num(to_ms(m.latency.p99()), 1) : "-",
                 Table::num(m.deadline_satisfaction, 3)});
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Expected shape: means stay close to the Poisson case (same\n"
              "average rate) while tails grow with burstiness; the joint\n"
              "decision's slack absorbs more of the bursts.\n");
  return 0;
}
