// F2 — End-to-end latency vs uplink bandwidth for one device/server pair:
// device-only, edge-only, Neurosurgeon partition, and joint surgery
// (partition + exits). Shows the partition point migrating with bandwidth
// and the joint scheme dominating across the sweep.

#include "bench_common.hpp"
#include "nn/models.hpp"
#include "surgery/exit_setting.hpp"
#include "surgery/partition.hpp"
#include "surgery/plan.hpp"
#include "profile/latency_model.hpp"

using namespace scalpel;

namespace {

struct Point {
  double device_only;
  double edge_only;
  double neurosurgeon;
  int ns_cut;
  double joint;
  int joint_cut;  // -1 = local
  std::size_t joint_exits;
};

Point sweep_point(const Graph& g, const std::vector<ExitCandidate>& cands,
                  const AccuracyModel& acc, const ComputeProfile& device,
                  const ComputeProfile& server, double bw) {
  const LinkSpec link{bw, ms(2.0)};
  Point p{};
  p.device_only = LatencyModel::graph_latency(g, device);
  p.edge_only = transfer_latency(g.node(0).out_shape.bytes(), bw, link.rtt) +
                LatencyModel::graph_latency(g, server);
  const auto ns = optimal_partition(g, device, server, link);
  p.neurosurgeon = ns.total();
  p.ns_cut = ns.device_only ? -1 : ns.cut_after;

  // Joint surgery for a single task stream: best (cut x exit policy) by
  // expected latency subject to the accuracy floor.
  ExitSettingOptions es;
  es.min_accuracy = 0.62;
  double best = std::numeric_limits<double>::infinity();
  int best_cut = -2;
  std::size_t best_exits = 0;
  // device-only with exits
  {
    const auto r = dp_exit_setting(g, cands, acc, device, es);
    if (r.feasible && r.expected_latency < best) {
      best = r.expected_latency;
      best_cut = -1;
      best_exits = r.policy.exits.size();
    }
  }
  for (const auto& cut : g.clean_cuts()) {
    // Price segments across the cut via the plan evaluator for each DP
    // proposal under this cut.
    SurgeryPlan plan;
    plan.partition_after = cut.after;
    // Propose exits with the device-profile DP (cheap proxy), then evaluate
    // exactly with PlanModel.
    for (const bool with_exits : {false, true}) {
      if (with_exits) {
        const auto r = dp_exit_setting(g, cands, acc, device, es);
        if (!r.feasible) continue;
        plan.policy = r.policy;
      } else {
        plan.policy.exits.clear();
      }
      const PlanModel pm(g, cands, plan, acc, device, server, link);
      if (pm.breakdown().expected_accuracy < es.min_accuracy - 1e-9) continue;
      if (pm.breakdown().expected_latency < best) {
        best = pm.breakdown().expected_latency;
        best_cut = cut.after;
        best_exits = plan.policy.exits.size();
      }
    }
  }
  p.joint = best;
  p.joint_cut = best_cut;
  p.joint_exits = best_exits;
  return p;
}

}  // namespace

int main() {
  bench::banner("F2", "Latency vs bandwidth; partition point migration");
  const auto g = models::vgg16();
  ExitCandidateOptions copts;
  copts.num_classes = 1000;
  const auto cands = find_exit_candidates(g, copts);
  const auto acc = AccuracyModel::for_model("vgg16");
  const auto device = profiles::smartphone();
  const auto server = profiles::edge_gpu_t4();

  Table t({"BW Mbps", "device-only ms", "edge-only ms", "neurosurgeon ms",
           "NS cut", "joint ms", "joint cut", "joint exits",
           "joint vs NS"});
  for (double mb : {0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0}) {
    const auto p =
        sweep_point(g, cands, acc, device, server, mbps(mb));
    t.add_row({Table::num(mb, 1), bench::fmt_ms(p.device_only),
               bench::fmt_ms(p.edge_only), bench::fmt_ms(p.neurosurgeon),
               p.ns_cut < 0 ? "local" : Table::num(std::int64_t{p.ns_cut}),
               bench::fmt_ms(p.joint),
               p.joint_cut < 0 ? "local"
                               : Table::num(std::int64_t{p.joint_cut}),
               Table::num(static_cast<std::int64_t>(p.joint_exits)),
               Table::num(p.neurosurgeon / p.joint, 2) + "x"});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Expected shape: edge-only explodes at low BW; the NS cut\n"
              "migrates deeper as BW shrinks; joint adds exits and wins\n"
              "everywhere, most at low bandwidth.\n");
  return 0;
}
