// T2 — Heterogeneous edge deployment profiles: device classes, edge servers
// and wireless cells used throughout the evaluation.

#include "bench_common.hpp"
#include "profile/compute_profile.hpp"

using namespace scalpel;

int main() {
  bench::banner("T2", "Heterogeneous device/server/link profiles");

  Table dev({"class", "peak GFLOPS", "mem GB/s", "conv eff.",
             "per-layer ovh (us)"});
  for (const char* name : {"iot_camera", "raspberry_pi4", "smartphone",
                           "jetson_nano", "edge_cpu", "edge_gpu_t4",
                           "edge_gpu_v100"}) {
    const auto p = profiles::by_name(name);
    dev.add_row({name, Table::num(p.peak_flops / 1e9, 0),
                 Table::num(p.mem_bw / 1e9, 1),
                 Table::num(p.efficiency.at(LayerKind::kConv), 2),
                 Table::num(p.layer_overhead * 1e6, 0)});
  }
  std::printf("%s\n", dev.to_string().c_str());

  std::printf("small_lab deployment:\n");
  const auto lab = clusters::small_lab();
  Table topo({"entity", "name", "detail"});
  for (const auto& c : lab.cells()) {
    topo.add_row({"cell", c.name,
                  Table::num(c.bandwidth * 8 / 1e6, 0) + " Mbps, rtt " +
                      Table::num(to_ms(c.rtt), 1) + " ms"});
  }
  for (const auto& d : lab.devices()) {
    topo.add_row({"device", d.name,
                  d.compute.name + " / " + d.model + " @ " +
                      Table::num(d.arrival_rate, 1) + "/s, D=" +
                      Table::num(to_ms(d.deadline), 0) + " ms, A>=" +
                      Table::num(d.min_accuracy, 2)});
  }
  for (const auto& s : lab.servers()) {
    topo.add_row({"server", s.name,
                  s.compute.name + ", backhaul " +
                      Table::num(to_ms(s.backhaul_rtt), 1) + " ms"});
  }
  std::printf("%s\n", topo.to_string().c_str());

  std::printf("campus generator (defaults): 24 devices, 4 servers, "
              "8 devices/cell, T4-class servers with CoV 0.5\n");
  return 0;
}
