#pragma once

// Shared plumbing for the figure/table reproduction binaries: a consistent
// header block, scheme runners, and DES wrappers. Every bench prints the
// rows/series of one reconstructed table or figure from the evaluation.
// Measured cells come from replicated DES runs and carry a 95% CI
// (methodology: EXPERIMENTS.md, "Replication methodology").

#include <cmath>
#include <cstdio>
#include <string>

#include "baselines/baselines.hpp"
#include "util/assert.hpp"
#include "core/joint.hpp"
#include "core/objective.hpp"
#include "edge/builders.hpp"
#include "perf/build_info.hpp"
#include "sim/runner.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace scalpel::bench {

inline void banner(const char* id, const char* title) {
  std::printf("==================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("==================================================\n");
  // Benches report measured latencies/timings; a Debug or sanitizer build
  // distorts them by an order of magnitude. Refuse to let such numbers
  // pass as results — every table printed below this banner is suspect.
  if (!perf::timing_trustworthy()) {
    std::printf("!! UNOPTIMIZED BUILD (Debug or sanitizer) — timing-derived\n"
                "!! numbers below are NOT measurements; rebuild Release.\n");
    std::printf("==================================================\n");
  }
}

/// Default (moderate) joint optimizer configuration used across benches.
inline JointOptions joint_opts() {
  JointOptions o;
  o.max_iterations = 4;
  o.dp_coverage_bins = 60;
  return o;
}

/// Optimize with the named scheme ("joint" or a baseline name).
inline Decision run_scheme(const ProblemInstance& instance,
                           const std::string& name) {
  if (name == "joint") {
    return JointOptimizer(joint_opts()).optimize(instance);
  }
  return baselines::by_name(instance, name);
}

/// DES validation options. Warmup is explicit — earlier revisions silently
/// used horizon * 0.1, which let short-horizon benches discard every
/// completion and report empty Samples as zeros.
struct SimulateOptions {
  double horizon = 40.0;
  double warmup = 4.0;
  std::uint64_t seed = 1;
  std::size_t replications = 8;  // for simulate_replicated
  std::size_t threads = 0;       // 0 = one per hardware core
};

inline SimulateOptions sim_opts(double horizon, std::uint64_t seed = 1) {
  SimulateOptions o;
  o.horizon = horizon;
  o.warmup = horizon * 0.1;  // the historical default, now stated
  o.seed = seed;
  return o;
}

/// Single-replication DES run (kept for transient/trace studies that need
/// one concrete trajectory). Asserts post-warmup completions > 0.
inline SimMetrics simulate(const ProblemInstance& instance, const Decision& d,
                           const SimulateOptions& opts) {
  Simulator::Options o;
  o.horizon = opts.horizon;
  o.warmup = opts.warmup;
  o.seed = opts.seed;
  Simulator sim(instance, d, o);
  SimMetrics m = sim.run();
  SCALPEL_REQUIRE(m.completed > 0,
                  "bench simulation finished zero post-warmup tasks; "
                  "lengthen the horizon or shrink the warmup");
  return m;
}

inline SimMetrics simulate(const ProblemInstance& instance, const Decision& d,
                           double horizon = 40.0, std::uint64_t seed = 1) {
  return simulate(instance, d, sim_opts(horizon, seed));
}

/// Replicated DES run: fans opts.replications independent seeds across the
/// pool and aggregates per-replication scalars (see ScenarioRunner).
inline ReplicatedMetrics simulate_replicated(const ProblemInstance& instance,
                                             const Decision& d,
                                             const SimulateOptions& opts) {
  ScenarioRunner::Options ro;
  ro.replications = opts.replications;
  ro.threads = opts.threads;
  ro.sim.horizon = opts.horizon;
  ro.sim.warmup = opts.warmup;
  ro.sim.seed = opts.seed;
  return ScenarioRunner(instance, d, ro).run();
}

inline ReplicatedMetrics simulate_replicated(const ProblemInstance& instance,
                                             const Decision& d,
                                             double horizon = 40.0,
                                             std::uint64_t seed = 1) {
  return simulate_replicated(instance, d, sim_opts(horizon, seed));
}

inline std::string fmt_ms(double seconds) {
  if (!std::isfinite(seconds)) return "unstable";
  return Table::num(to_ms(seconds), 2);
}

/// "mean ± ci" cell (in ms) from per-replication second-valued samples.
inline std::string fmt_mean_ci_ms(const Samples& per_rep_seconds,
                                  int precision = 1) {
  if (per_rep_seconds.empty()) return "-";
  const Summary s = summarize(per_rep_seconds);
  return Table::mean_ci(to_ms(s.mean), to_ms(s.ci95), precision);
}

/// "mean ± ci" cell for dimensionless per-replication samples.
inline std::string fmt_mean_ci(const Samples& per_rep, int precision = 3) {
  if (per_rep.empty()) return "-";
  const Summary s = summarize(per_rep);
  return Table::mean_ci(s.mean, s.ci95, precision);
}

}  // namespace scalpel::bench
