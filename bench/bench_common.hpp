#pragma once

// Shared plumbing for the figure/table reproduction binaries: a consistent
// header block, scheme runners, and a DES wrapper. Every bench prints the
// rows/series of one reconstructed table or figure from the evaluation.

#include <cmath>
#include <cstdio>
#include <string>

#include "baselines/baselines.hpp"
#include "core/joint.hpp"
#include "core/objective.hpp"
#include "edge/builders.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace scalpel::bench {

inline void banner(const char* id, const char* title) {
  std::printf("==================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("==================================================\n");
}

/// Default (moderate) joint optimizer configuration used across benches.
inline JointOptions joint_opts() {
  JointOptions o;
  o.max_iterations = 4;
  o.dp_coverage_bins = 60;
  return o;
}

/// Optimize with the named scheme ("joint" or a baseline name).
inline Decision run_scheme(const ProblemInstance& instance,
                           const std::string& name) {
  if (name == "joint") {
    return JointOptimizer(joint_opts()).optimize(instance);
  }
  return baselines::by_name(instance, name);
}

/// Short DES validation run for a decision.
inline SimMetrics simulate(const ProblemInstance& instance, const Decision& d,
                           double horizon = 40.0, std::uint64_t seed = 1) {
  Simulator::Options opts;
  opts.horizon = horizon;
  opts.warmup = horizon * 0.1;
  opts.seed = seed;
  Simulator sim(instance, d, opts);
  return sim.run();
}

inline std::string fmt_ms(double seconds) {
  if (!std::isfinite(seconds)) return "unstable";
  return Table::num(to_ms(seconds), 2);
}

}  // namespace scalpel::bench
