// F11 — Distributed offloading: best-response convergence speed and
// optimality gap. Random offloading games of growing size; rounds to a Nash
// point, social cost vs greedy, and (small instances) vs the exact optimum.

#include "bench_common.hpp"
#include "sched/offloading.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace scalpel;

namespace {

OffloadingProblem random_problem(std::size_t n, std::size_t m, Rng& rng) {
  OffloadingProblem p;
  p.capacity.assign(m, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    p.rate.push_back(rng.uniform(0.5, 2.0));
    std::vector<double> base;
    std::vector<double> work;
    for (std::size_t j = 0; j < m; ++j) {
      base.push_back(rng.uniform(0.005, 0.05));
      work.push_back(rng.uniform(0.01, 0.25 / static_cast<double>(n) * 4.0));
    }
    p.base_latency.push_back(std::move(base));
    p.work.push_back(std::move(work));
  }
  return p;
}

}  // namespace

int main() {
  bench::banner("F11", "Best-response offloading: convergence + gap");
  Table t({"devices", "servers", "avg rounds", "max rounds", "BR/greedy",
           "BR/optimal (n<=6)"});
  Rng rng(41);
  for (const auto& [n, m] : std::vector<std::pair<std::size_t, std::size_t>>{
           {4, 2}, {6, 2}, {8, 3}, {16, 4}, {32, 6}, {64, 8}}) {
    RunningStat rounds;
    RunningStat vs_greedy;
    RunningStat vs_opt;
    std::size_t max_rounds = 0;
    for (int trial = 0; trial < 10; ++trial) {
      const auto p = random_problem(n, m, rng);
      const auto gr = greedy_offloading(p);
      const auto br = best_response_offloading(p);
      if (!br.feasible || !gr.feasible) continue;
      rounds.add(static_cast<double>(br.iterations));
      max_rounds = std::max(max_rounds, br.iterations);
      vs_greedy.add(br.social_cost / gr.social_cost);
      if (n <= 6) {
        const auto opt = exhaustive_offloading(p);
        if (opt.feasible) vs_opt.add(br.social_cost / opt.social_cost);
      }
    }
    t.add_row({Table::num(static_cast<std::int64_t>(n)),
               Table::num(static_cast<std::int64_t>(m)),
               Table::num(rounds.mean(), 1),
               Table::num(static_cast<std::int64_t>(max_rounds)),
               Table::num(vs_greedy.mean(), 3),
               vs_opt.count() ? Table::num(vs_opt.mean(), 3) : "-"});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Expected shape: convergence in a handful of rounds,\n"
              "BR <= greedy, and within a few percent of optimal where the\n"
              "optimum is computable.\n");
  return 0;
}
