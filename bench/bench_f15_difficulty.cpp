// F15 (extension) — Sensitivity to the input-difficulty mix: the multi-exit
// gains depend on how much of the traffic is "easy". Sweeps the difficulty
// distribution of every device's stream and compares joint against the
// exit-less variant, analytically and in the DES.

#include "bench_common.hpp"
#include "surgery/difficulty.hpp"

using namespace scalpel;

namespace {

ClusterTopology lab_with_difficulty(const DifficultyModel& diff) {
  auto topo = clusters::small_lab();
  ClusterTopology out;
  for (const auto& c : topo.cells()) {
    Cell cell = c;
    cell.id = -1;
    out.add_cell(std::move(cell));
  }
  for (const auto& d : topo.devices()) {
    Device dev = d;
    dev.id = -1;
    dev.difficulty = diff;
    out.add_device(std::move(dev));
  }
  for (const auto& s : topo.servers()) {
    EdgeServer server = s;
    server.id = -1;
    out.add_server(std::move(server));
  }
  out.validate();
  return out;
}

}  // namespace

int main() {
  bench::banner("F15", "Sensitivity to the input-difficulty mix");
  Table t({"difficulty", "joint ms", "joint w/o exits ms", "exit gain",
           "DES mean ms (±95% CI)", "DES accuracy (±95% CI)"});
  for (const char* preset :
       {"easy_heavy", "bimodal_easy", "uniform", "hard_heavy"}) {
    const ProblemInstance instance(
        lab_with_difficulty(DifficultyModel::preset(preset)));
    const auto joint =
        JointOptimizer(bench::joint_opts()).optimize(instance);
    JointOptions ne = bench::joint_opts();
    ne.enable_exits = false;
    const auto no_exits = JointOptimizer(ne).optimize(instance);
    const auto m = bench::simulate_replicated(instance, joint, 40.0);
    std::string gain = "-";
    if (std::isfinite(joint.mean_latency) &&
        std::isfinite(no_exits.mean_latency)) {
      gain = Table::num(no_exits.mean_latency / joint.mean_latency, 2) + "x";
    }
    t.add_row({preset, bench::fmt_ms(joint.mean_latency),
               bench::fmt_ms(no_exits.mean_latency), gain,
               bench::fmt_mean_ci_ms(m.mean_latency),
               bench::fmt_mean_ci(m.accuracy)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Expected shape: the exit gain is largest for easy-dominated\n"
              "traffic and shrinks toward 1x as the mix hardens.\n");
  return 0;
}
