// F5 — Deadline-satisfaction ratio vs deadline tightness: joint against the
// strongest baselines, predicted (tail model) and measured (DES).

#include "bench_common.hpp"

using namespace scalpel;

namespace {

ClusterTopology with_deadline(double deadline) {
  clusters::CampusOptions copts;
  copts.num_devices = 10;
  copts.num_servers = 3;
  copts.deadline = deadline;
  copts.seed = 11;
  return clusters::campus(copts);
}

}  // namespace

int main() {
  bench::banner("F5", "Deadline satisfaction vs deadline tightness");
  const std::vector<std::string> schemes = {"neurosurgeon", "local_multi_exit",
                                            "joint"};
  Table t({"deadline ms", "scheme", "pred. sat.", "DES sat. (±95% CI)",
           "DES mean ms (±95% CI)"});
  for (double deadline_ms : {50.0, 100.0, 150.0, 250.0, 400.0, 800.0}) {
    const ProblemInstance instance(with_deadline(ms(deadline_ms)));
    for (const auto& scheme : schemes) {
      const auto d = bench::run_scheme(instance, scheme);
      const double pred = predicted_deadline_satisfaction(instance, d);
      const auto m = bench::simulate_replicated(instance, d, 30.0);
      t.add_row({Table::num(deadline_ms, 0), scheme, Table::num(pred, 3),
                 bench::fmt_mean_ci(m.deadline_satisfaction),
                 bench::fmt_mean_ci_ms(m.mean_latency)});
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Expected shape: all schemes converge to ~1.0 for loose\n"
              "deadlines; joint sustains high satisfaction to much tighter\n"
              "deadlines than partition-only or local multi-exit.\n");
  return 0;
}
