file(REMOVE_RECURSE
  "CMakeFiles/smart_factory.dir/smart_factory.cpp.o"
  "CMakeFiles/smart_factory.dir/smart_factory.cpp.o.d"
  "smart_factory"
  "smart_factory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_factory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
