# Empty dependencies file for smart_factory.
# This may be replaced when dependencies are built.
