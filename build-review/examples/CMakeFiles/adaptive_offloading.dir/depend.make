# Empty dependencies file for adaptive_offloading.
# This may be replaced when dependencies are built.
