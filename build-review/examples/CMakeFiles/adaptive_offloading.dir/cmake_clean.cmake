file(REMOVE_RECURSE
  "CMakeFiles/adaptive_offloading.dir/adaptive_offloading.cpp.o"
  "CMakeFiles/adaptive_offloading.dir/adaptive_offloading.cpp.o.d"
  "adaptive_offloading"
  "adaptive_offloading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_offloading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
