# Empty compiler generated dependencies file for calibrate_profile.
# This may be replaced when dependencies are built.
