file(REMOVE_RECURSE
  "CMakeFiles/calibrate_profile.dir/calibrate_profile.cpp.o"
  "CMakeFiles/calibrate_profile.dir/calibrate_profile.cpp.o.d"
  "calibrate_profile"
  "calibrate_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
