# Empty dependencies file for scalpel_cli.
# This may be replaced when dependencies are built.
