file(REMOVE_RECURSE
  "CMakeFiles/scalpel_cli.dir/scalpel_cli.cpp.o"
  "CMakeFiles/scalpel_cli.dir/scalpel_cli.cpp.o.d"
  "scalpel_cli"
  "scalpel_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalpel_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
