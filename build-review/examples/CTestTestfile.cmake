# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-review/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-review/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_pipeline "/usr/bin/cmake" "-DCLI=/root/repo/build-review/examples/scalpel_cli" "-DWORK_DIR=/root/repo/build-review/examples" "-P" "/root/repo/examples/cli_smoke.cmake")
set_tests_properties(example_cli_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
