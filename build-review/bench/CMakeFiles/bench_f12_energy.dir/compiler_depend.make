# Empty compiler generated dependencies file for bench_f12_energy.
# This may be replaced when dependencies are built.
