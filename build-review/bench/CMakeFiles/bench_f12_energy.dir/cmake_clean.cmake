file(REMOVE_RECURSE
  "CMakeFiles/bench_f12_energy.dir/bench_f12_energy.cpp.o"
  "CMakeFiles/bench_f12_energy.dir/bench_f12_energy.cpp.o.d"
  "bench_f12_energy"
  "bench_f12_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f12_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
