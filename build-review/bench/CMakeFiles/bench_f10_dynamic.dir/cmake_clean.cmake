file(REMOVE_RECURSE
  "CMakeFiles/bench_f10_dynamic.dir/bench_f10_dynamic.cpp.o"
  "CMakeFiles/bench_f10_dynamic.dir/bench_f10_dynamic.cpp.o.d"
  "bench_f10_dynamic"
  "bench_f10_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f10_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
