# Empty dependencies file for bench_f10_dynamic.
# This may be replaced when dependencies are built.
