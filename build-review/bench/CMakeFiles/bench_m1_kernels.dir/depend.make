# Empty dependencies file for bench_m1_kernels.
# This may be replaced when dependencies are built.
