# Empty compiler generated dependencies file for bench_f8_ablation.
# This may be replaced when dependencies are built.
