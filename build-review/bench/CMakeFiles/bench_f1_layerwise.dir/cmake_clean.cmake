file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_layerwise.dir/bench_f1_layerwise.cpp.o"
  "CMakeFiles/bench_f1_layerwise.dir/bench_f1_layerwise.cpp.o.d"
  "bench_f1_layerwise"
  "bench_f1_layerwise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_layerwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
