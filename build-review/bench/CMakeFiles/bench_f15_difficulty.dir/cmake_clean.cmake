file(REMOVE_RECURSE
  "CMakeFiles/bench_f15_difficulty.dir/bench_f15_difficulty.cpp.o"
  "CMakeFiles/bench_f15_difficulty.dir/bench_f15_difficulty.cpp.o.d"
  "bench_f15_difficulty"
  "bench_f15_difficulty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f15_difficulty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
