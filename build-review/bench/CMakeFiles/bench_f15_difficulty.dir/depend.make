# Empty dependencies file for bench_f15_difficulty.
# This may be replaced when dependencies are built.
