file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_deadline.dir/bench_f5_deadline.cpp.o"
  "CMakeFiles/bench_f5_deadline.dir/bench_f5_deadline.cpp.o.d"
  "bench_f5_deadline"
  "bench_f5_deadline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_deadline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
