# Empty dependencies file for bench_f5_deadline.
# This may be replaced when dependencies are built.
