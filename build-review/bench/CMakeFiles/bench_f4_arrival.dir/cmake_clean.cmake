file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_arrival.dir/bench_f4_arrival.cpp.o"
  "CMakeFiles/bench_f4_arrival.dir/bench_f4_arrival.cpp.o.d"
  "bench_f4_arrival"
  "bench_f4_arrival.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_arrival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
