# Empty dependencies file for bench_f9_heterogeneity.
# This may be replaced when dependencies are built.
