file(REMOVE_RECURSE
  "CMakeFiles/bench_f9_heterogeneity.dir/bench_f9_heterogeneity.cpp.o"
  "CMakeFiles/bench_f9_heterogeneity.dir/bench_f9_heterogeneity.cpp.o.d"
  "bench_f9_heterogeneity"
  "bench_f9_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f9_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
