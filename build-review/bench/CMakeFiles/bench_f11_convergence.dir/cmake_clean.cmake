file(REMOVE_RECURSE
  "CMakeFiles/bench_f11_convergence.dir/bench_f11_convergence.cpp.o"
  "CMakeFiles/bench_f11_convergence.dir/bench_f11_convergence.cpp.o.d"
  "bench_f11_convergence"
  "bench_f11_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f11_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
