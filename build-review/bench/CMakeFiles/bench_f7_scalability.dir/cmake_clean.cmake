file(REMOVE_RECURSE
  "CMakeFiles/bench_f7_scalability.dir/bench_f7_scalability.cpp.o"
  "CMakeFiles/bench_f7_scalability.dir/bench_f7_scalability.cpp.o.d"
  "bench_f7_scalability"
  "bench_f7_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
