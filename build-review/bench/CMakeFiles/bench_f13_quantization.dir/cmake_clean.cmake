file(REMOVE_RECURSE
  "CMakeFiles/bench_f13_quantization.dir/bench_f13_quantization.cpp.o"
  "CMakeFiles/bench_f13_quantization.dir/bench_f13_quantization.cpp.o.d"
  "bench_f13_quantization"
  "bench_f13_quantization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f13_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
