# Empty compiler generated dependencies file for bench_f13_quantization.
# This may be replaced when dependencies are built.
