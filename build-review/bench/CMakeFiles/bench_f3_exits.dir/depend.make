# Empty dependencies file for bench_f3_exits.
# This may be replaced when dependencies are built.
