file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_exits.dir/bench_f3_exits.cpp.o"
  "CMakeFiles/bench_f3_exits.dir/bench_f3_exits.cpp.o.d"
  "bench_f3_exits"
  "bench_f3_exits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_exits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
