# Empty dependencies file for bench_f14_burstiness.
# This may be replaced when dependencies are built.
