file(REMOVE_RECURSE
  "CMakeFiles/bench_f14_burstiness.dir/bench_f14_burstiness.cpp.o"
  "CMakeFiles/bench_f14_burstiness.dir/bench_f14_burstiness.cpp.o.d"
  "bench_f14_burstiness"
  "bench_f14_burstiness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f14_burstiness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
