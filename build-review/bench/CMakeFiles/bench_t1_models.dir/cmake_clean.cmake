file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_models.dir/bench_t1_models.cpp.o"
  "CMakeFiles/bench_t1_models.dir/bench_t1_models.cpp.o.d"
  "bench_t1_models"
  "bench_t1_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
