# Empty dependencies file for bench_t1_models.
# This may be replaced when dependencies are built.
