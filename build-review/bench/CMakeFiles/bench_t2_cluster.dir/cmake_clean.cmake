file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_cluster.dir/bench_t2_cluster.cpp.o"
  "CMakeFiles/bench_t2_cluster.dir/bench_t2_cluster.cpp.o.d"
  "bench_t2_cluster"
  "bench_t2_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
