file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_speedup.dir/bench_f6_speedup.cpp.o"
  "CMakeFiles/bench_f6_speedup.dir/bench_f6_speedup.cpp.o.d"
  "bench_f6_speedup"
  "bench_f6_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
