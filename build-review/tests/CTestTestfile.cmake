# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/test_util[1]_include.cmake")
include("/root/repo/build-review/tests/test_tensor[1]_include.cmake")
include("/root/repo/build-review/tests/test_nn[1]_include.cmake")
include("/root/repo/build-review/tests/test_profile[1]_include.cmake")
include("/root/repo/build-review/tests/test_surgery[1]_include.cmake")
include("/root/repo/build-review/tests/test_edge[1]_include.cmake")
include("/root/repo/build-review/tests/test_sched[1]_include.cmake")
include("/root/repo/build-review/tests/test_core[1]_include.cmake")
include("/root/repo/build-review/tests/test_sim[1]_include.cmake")
include("/root/repo/build-review/tests/test_integration[1]_include.cmake")
