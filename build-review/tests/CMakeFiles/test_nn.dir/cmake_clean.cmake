file(REMOVE_RECURSE
  "CMakeFiles/test_nn.dir/nn/executor_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/executor_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/graph_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/graph_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/kernels_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/kernels_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/models_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/models_test.cpp.o.d"
  "test_nn"
  "test_nn.pdb"
  "test_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
