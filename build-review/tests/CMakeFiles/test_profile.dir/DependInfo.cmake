
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/profile/profile_test.cpp" "tests/CMakeFiles/test_profile.dir/profile/profile_test.cpp.o" "gcc" "tests/CMakeFiles/test_profile.dir/profile/profile_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/baselines/CMakeFiles/scalpel_baselines.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/scalpel_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/scalpel_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/edge/CMakeFiles/scalpel_edge.dir/DependInfo.cmake"
  "/root/repo/build-review/src/surgery/CMakeFiles/scalpel_surgery.dir/DependInfo.cmake"
  "/root/repo/build-review/src/profile/CMakeFiles/scalpel_profile.dir/DependInfo.cmake"
  "/root/repo/build-review/src/nn/CMakeFiles/scalpel_nn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/tensor/CMakeFiles/scalpel_tensor.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sched/CMakeFiles/scalpel_sched.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/scalpel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
