file(REMOVE_RECURSE
  "CMakeFiles/test_surgery.dir/surgery/accuracy_test.cpp.o"
  "CMakeFiles/test_surgery.dir/surgery/accuracy_test.cpp.o.d"
  "CMakeFiles/test_surgery.dir/surgery/candidates_test.cpp.o"
  "CMakeFiles/test_surgery.dir/surgery/candidates_test.cpp.o.d"
  "CMakeFiles/test_surgery.dir/surgery/difficulty_test.cpp.o"
  "CMakeFiles/test_surgery.dir/surgery/difficulty_test.cpp.o.d"
  "CMakeFiles/test_surgery.dir/surgery/dot_test.cpp.o"
  "CMakeFiles/test_surgery.dir/surgery/dot_test.cpp.o.d"
  "CMakeFiles/test_surgery.dir/surgery/partition_test.cpp.o"
  "CMakeFiles/test_surgery.dir/surgery/partition_test.cpp.o.d"
  "CMakeFiles/test_surgery.dir/surgery/plan_test.cpp.o"
  "CMakeFiles/test_surgery.dir/surgery/plan_test.cpp.o.d"
  "CMakeFiles/test_surgery.dir/surgery/policy_test.cpp.o"
  "CMakeFiles/test_surgery.dir/surgery/policy_test.cpp.o.d"
  "CMakeFiles/test_surgery.dir/surgery/quantize_test.cpp.o"
  "CMakeFiles/test_surgery.dir/surgery/quantize_test.cpp.o.d"
  "CMakeFiles/test_surgery.dir/surgery/runtime_test.cpp.o"
  "CMakeFiles/test_surgery.dir/surgery/runtime_test.cpp.o.d"
  "CMakeFiles/test_surgery.dir/surgery/setting_test.cpp.o"
  "CMakeFiles/test_surgery.dir/surgery/setting_test.cpp.o.d"
  "CMakeFiles/test_surgery.dir/surgery/zoo_sweep_test.cpp.o"
  "CMakeFiles/test_surgery.dir/surgery/zoo_sweep_test.cpp.o.d"
  "test_surgery"
  "test_surgery.pdb"
  "test_surgery[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_surgery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
