# Empty dependencies file for scalpel_baselines.
# This may be replaced when dependencies are built.
