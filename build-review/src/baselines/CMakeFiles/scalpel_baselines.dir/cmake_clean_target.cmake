file(REMOVE_RECURSE
  "libscalpel_baselines.a"
)
