file(REMOVE_RECURSE
  "CMakeFiles/scalpel_baselines.dir/baselines.cpp.o"
  "CMakeFiles/scalpel_baselines.dir/baselines.cpp.o.d"
  "libscalpel_baselines.a"
  "libscalpel_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalpel_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
