# Empty compiler generated dependencies file for scalpel_tensor.
# This may be replaced when dependencies are built.
