file(REMOVE_RECURSE
  "CMakeFiles/scalpel_tensor.dir/tensor.cpp.o"
  "CMakeFiles/scalpel_tensor.dir/tensor.cpp.o.d"
  "libscalpel_tensor.a"
  "libscalpel_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalpel_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
