file(REMOVE_RECURSE
  "libscalpel_tensor.a"
)
