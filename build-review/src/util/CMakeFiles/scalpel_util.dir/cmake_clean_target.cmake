file(REMOVE_RECURSE
  "libscalpel_util.a"
)
