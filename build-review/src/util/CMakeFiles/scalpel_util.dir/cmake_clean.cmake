file(REMOVE_RECURSE
  "CMakeFiles/scalpel_util.dir/csv.cpp.o"
  "CMakeFiles/scalpel_util.dir/csv.cpp.o.d"
  "CMakeFiles/scalpel_util.dir/json.cpp.o"
  "CMakeFiles/scalpel_util.dir/json.cpp.o.d"
  "CMakeFiles/scalpel_util.dir/log.cpp.o"
  "CMakeFiles/scalpel_util.dir/log.cpp.o.d"
  "CMakeFiles/scalpel_util.dir/rng.cpp.o"
  "CMakeFiles/scalpel_util.dir/rng.cpp.o.d"
  "CMakeFiles/scalpel_util.dir/stats.cpp.o"
  "CMakeFiles/scalpel_util.dir/stats.cpp.o.d"
  "CMakeFiles/scalpel_util.dir/table.cpp.o"
  "CMakeFiles/scalpel_util.dir/table.cpp.o.d"
  "CMakeFiles/scalpel_util.dir/thread_pool.cpp.o"
  "CMakeFiles/scalpel_util.dir/thread_pool.cpp.o.d"
  "libscalpel_util.a"
  "libscalpel_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalpel_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
