# Empty dependencies file for scalpel_util.
# This may be replaced when dependencies are built.
