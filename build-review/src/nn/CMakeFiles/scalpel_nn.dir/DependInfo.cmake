
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/executor.cpp" "src/nn/CMakeFiles/scalpel_nn.dir/executor.cpp.o" "gcc" "src/nn/CMakeFiles/scalpel_nn.dir/executor.cpp.o.d"
  "/root/repo/src/nn/graph.cpp" "src/nn/CMakeFiles/scalpel_nn.dir/graph.cpp.o" "gcc" "src/nn/CMakeFiles/scalpel_nn.dir/graph.cpp.o.d"
  "/root/repo/src/nn/kernels.cpp" "src/nn/CMakeFiles/scalpel_nn.dir/kernels.cpp.o" "gcc" "src/nn/CMakeFiles/scalpel_nn.dir/kernels.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/nn/CMakeFiles/scalpel_nn.dir/layer.cpp.o" "gcc" "src/nn/CMakeFiles/scalpel_nn.dir/layer.cpp.o.d"
  "/root/repo/src/nn/models.cpp" "src/nn/CMakeFiles/scalpel_nn.dir/models.cpp.o" "gcc" "src/nn/CMakeFiles/scalpel_nn.dir/models.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/tensor/CMakeFiles/scalpel_tensor.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/scalpel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
