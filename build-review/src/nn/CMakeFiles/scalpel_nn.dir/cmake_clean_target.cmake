file(REMOVE_RECURSE
  "libscalpel_nn.a"
)
