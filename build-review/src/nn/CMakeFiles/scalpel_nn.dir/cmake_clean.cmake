file(REMOVE_RECURSE
  "CMakeFiles/scalpel_nn.dir/executor.cpp.o"
  "CMakeFiles/scalpel_nn.dir/executor.cpp.o.d"
  "CMakeFiles/scalpel_nn.dir/graph.cpp.o"
  "CMakeFiles/scalpel_nn.dir/graph.cpp.o.d"
  "CMakeFiles/scalpel_nn.dir/kernels.cpp.o"
  "CMakeFiles/scalpel_nn.dir/kernels.cpp.o.d"
  "CMakeFiles/scalpel_nn.dir/layer.cpp.o"
  "CMakeFiles/scalpel_nn.dir/layer.cpp.o.d"
  "CMakeFiles/scalpel_nn.dir/models.cpp.o"
  "CMakeFiles/scalpel_nn.dir/models.cpp.o.d"
  "libscalpel_nn.a"
  "libscalpel_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalpel_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
