# Empty compiler generated dependencies file for scalpel_nn.
# This may be replaced when dependencies are built.
