# Empty dependencies file for scalpel_nn.
# This may be replaced when dependencies are built.
