file(REMOVE_RECURSE
  "libscalpel_edge.a"
)
