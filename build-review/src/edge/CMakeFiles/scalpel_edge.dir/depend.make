# Empty dependencies file for scalpel_edge.
# This may be replaced when dependencies are built.
