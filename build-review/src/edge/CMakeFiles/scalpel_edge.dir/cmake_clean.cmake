file(REMOVE_RECURSE
  "CMakeFiles/scalpel_edge.dir/builders.cpp.o"
  "CMakeFiles/scalpel_edge.dir/builders.cpp.o.d"
  "CMakeFiles/scalpel_edge.dir/cluster.cpp.o"
  "CMakeFiles/scalpel_edge.dir/cluster.cpp.o.d"
  "CMakeFiles/scalpel_edge.dir/dynamics.cpp.o"
  "CMakeFiles/scalpel_edge.dir/dynamics.cpp.o.d"
  "libscalpel_edge.a"
  "libscalpel_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalpel_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
