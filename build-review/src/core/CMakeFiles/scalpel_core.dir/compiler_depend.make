# Empty compiler generated dependencies file for scalpel_core.
# This may be replaced when dependencies are built.
