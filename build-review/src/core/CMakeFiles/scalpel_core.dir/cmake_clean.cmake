file(REMOVE_RECURSE
  "CMakeFiles/scalpel_core.dir/admission.cpp.o"
  "CMakeFiles/scalpel_core.dir/admission.cpp.o.d"
  "CMakeFiles/scalpel_core.dir/instance.cpp.o"
  "CMakeFiles/scalpel_core.dir/instance.cpp.o.d"
  "CMakeFiles/scalpel_core.dir/joint.cpp.o"
  "CMakeFiles/scalpel_core.dir/joint.cpp.o.d"
  "CMakeFiles/scalpel_core.dir/objective.cpp.o"
  "CMakeFiles/scalpel_core.dir/objective.cpp.o.d"
  "CMakeFiles/scalpel_core.dir/online.cpp.o"
  "CMakeFiles/scalpel_core.dir/online.cpp.o.d"
  "CMakeFiles/scalpel_core.dir/serialize.cpp.o"
  "CMakeFiles/scalpel_core.dir/serialize.cpp.o.d"
  "libscalpel_core.a"
  "libscalpel_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalpel_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
