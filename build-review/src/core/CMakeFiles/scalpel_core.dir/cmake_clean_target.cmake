file(REMOVE_RECURSE
  "libscalpel_core.a"
)
