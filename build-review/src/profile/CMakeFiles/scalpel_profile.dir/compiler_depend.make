# Empty compiler generated dependencies file for scalpel_profile.
# This may be replaced when dependencies are built.
