
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/compute_profile.cpp" "src/profile/CMakeFiles/scalpel_profile.dir/compute_profile.cpp.o" "gcc" "src/profile/CMakeFiles/scalpel_profile.dir/compute_profile.cpp.o.d"
  "/root/repo/src/profile/energy_model.cpp" "src/profile/CMakeFiles/scalpel_profile.dir/energy_model.cpp.o" "gcc" "src/profile/CMakeFiles/scalpel_profile.dir/energy_model.cpp.o.d"
  "/root/repo/src/profile/latency_model.cpp" "src/profile/CMakeFiles/scalpel_profile.dir/latency_model.cpp.o" "gcc" "src/profile/CMakeFiles/scalpel_profile.dir/latency_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/nn/CMakeFiles/scalpel_nn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/scalpel_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/tensor/CMakeFiles/scalpel_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
