file(REMOVE_RECURSE
  "CMakeFiles/scalpel_profile.dir/compute_profile.cpp.o"
  "CMakeFiles/scalpel_profile.dir/compute_profile.cpp.o.d"
  "CMakeFiles/scalpel_profile.dir/energy_model.cpp.o"
  "CMakeFiles/scalpel_profile.dir/energy_model.cpp.o.d"
  "CMakeFiles/scalpel_profile.dir/latency_model.cpp.o"
  "CMakeFiles/scalpel_profile.dir/latency_model.cpp.o.d"
  "libscalpel_profile.a"
  "libscalpel_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalpel_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
