file(REMOVE_RECURSE
  "libscalpel_profile.a"
)
