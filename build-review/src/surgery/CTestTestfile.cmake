# CMake generated Testfile for 
# Source directory: /root/repo/src/surgery
# Build directory: /root/repo/build-review/src/surgery
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
