file(REMOVE_RECURSE
  "libscalpel_surgery.a"
)
