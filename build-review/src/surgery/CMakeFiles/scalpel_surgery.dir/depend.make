# Empty dependencies file for scalpel_surgery.
# This may be replaced when dependencies are built.
