
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/surgery/accuracy_model.cpp" "src/surgery/CMakeFiles/scalpel_surgery.dir/accuracy_model.cpp.o" "gcc" "src/surgery/CMakeFiles/scalpel_surgery.dir/accuracy_model.cpp.o.d"
  "/root/repo/src/surgery/difficulty.cpp" "src/surgery/CMakeFiles/scalpel_surgery.dir/difficulty.cpp.o" "gcc" "src/surgery/CMakeFiles/scalpel_surgery.dir/difficulty.cpp.o.d"
  "/root/repo/src/surgery/dot.cpp" "src/surgery/CMakeFiles/scalpel_surgery.dir/dot.cpp.o" "gcc" "src/surgery/CMakeFiles/scalpel_surgery.dir/dot.cpp.o.d"
  "/root/repo/src/surgery/exit_candidates.cpp" "src/surgery/CMakeFiles/scalpel_surgery.dir/exit_candidates.cpp.o" "gcc" "src/surgery/CMakeFiles/scalpel_surgery.dir/exit_candidates.cpp.o.d"
  "/root/repo/src/surgery/exit_policy.cpp" "src/surgery/CMakeFiles/scalpel_surgery.dir/exit_policy.cpp.o" "gcc" "src/surgery/CMakeFiles/scalpel_surgery.dir/exit_policy.cpp.o.d"
  "/root/repo/src/surgery/exit_setting.cpp" "src/surgery/CMakeFiles/scalpel_surgery.dir/exit_setting.cpp.o" "gcc" "src/surgery/CMakeFiles/scalpel_surgery.dir/exit_setting.cpp.o.d"
  "/root/repo/src/surgery/multi_exit_runtime.cpp" "src/surgery/CMakeFiles/scalpel_surgery.dir/multi_exit_runtime.cpp.o" "gcc" "src/surgery/CMakeFiles/scalpel_surgery.dir/multi_exit_runtime.cpp.o.d"
  "/root/repo/src/surgery/partition.cpp" "src/surgery/CMakeFiles/scalpel_surgery.dir/partition.cpp.o" "gcc" "src/surgery/CMakeFiles/scalpel_surgery.dir/partition.cpp.o.d"
  "/root/repo/src/surgery/plan.cpp" "src/surgery/CMakeFiles/scalpel_surgery.dir/plan.cpp.o" "gcc" "src/surgery/CMakeFiles/scalpel_surgery.dir/plan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/nn/CMakeFiles/scalpel_nn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/profile/CMakeFiles/scalpel_profile.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/scalpel_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/tensor/CMakeFiles/scalpel_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
