# Empty compiler generated dependencies file for scalpel_surgery.
# This may be replaced when dependencies are built.
