file(REMOVE_RECURSE
  "CMakeFiles/scalpel_surgery.dir/accuracy_model.cpp.o"
  "CMakeFiles/scalpel_surgery.dir/accuracy_model.cpp.o.d"
  "CMakeFiles/scalpel_surgery.dir/difficulty.cpp.o"
  "CMakeFiles/scalpel_surgery.dir/difficulty.cpp.o.d"
  "CMakeFiles/scalpel_surgery.dir/dot.cpp.o"
  "CMakeFiles/scalpel_surgery.dir/dot.cpp.o.d"
  "CMakeFiles/scalpel_surgery.dir/exit_candidates.cpp.o"
  "CMakeFiles/scalpel_surgery.dir/exit_candidates.cpp.o.d"
  "CMakeFiles/scalpel_surgery.dir/exit_policy.cpp.o"
  "CMakeFiles/scalpel_surgery.dir/exit_policy.cpp.o.d"
  "CMakeFiles/scalpel_surgery.dir/exit_setting.cpp.o"
  "CMakeFiles/scalpel_surgery.dir/exit_setting.cpp.o.d"
  "CMakeFiles/scalpel_surgery.dir/multi_exit_runtime.cpp.o"
  "CMakeFiles/scalpel_surgery.dir/multi_exit_runtime.cpp.o.d"
  "CMakeFiles/scalpel_surgery.dir/partition.cpp.o"
  "CMakeFiles/scalpel_surgery.dir/partition.cpp.o.d"
  "CMakeFiles/scalpel_surgery.dir/plan.cpp.o"
  "CMakeFiles/scalpel_surgery.dir/plan.cpp.o.d"
  "libscalpel_surgery.a"
  "libscalpel_surgery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalpel_surgery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
