file(REMOVE_RECURSE
  "CMakeFiles/scalpel_sched.dir/offloading.cpp.o"
  "CMakeFiles/scalpel_sched.dir/offloading.cpp.o.d"
  "CMakeFiles/scalpel_sched.dir/queueing.cpp.o"
  "CMakeFiles/scalpel_sched.dir/queueing.cpp.o.d"
  "CMakeFiles/scalpel_sched.dir/shares.cpp.o"
  "CMakeFiles/scalpel_sched.dir/shares.cpp.o.d"
  "libscalpel_sched.a"
  "libscalpel_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalpel_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
