file(REMOVE_RECURSE
  "libscalpel_sched.a"
)
