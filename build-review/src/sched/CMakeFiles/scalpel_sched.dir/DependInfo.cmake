
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/offloading.cpp" "src/sched/CMakeFiles/scalpel_sched.dir/offloading.cpp.o" "gcc" "src/sched/CMakeFiles/scalpel_sched.dir/offloading.cpp.o.d"
  "/root/repo/src/sched/queueing.cpp" "src/sched/CMakeFiles/scalpel_sched.dir/queueing.cpp.o" "gcc" "src/sched/CMakeFiles/scalpel_sched.dir/queueing.cpp.o.d"
  "/root/repo/src/sched/shares.cpp" "src/sched/CMakeFiles/scalpel_sched.dir/shares.cpp.o" "gcc" "src/sched/CMakeFiles/scalpel_sched.dir/shares.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/scalpel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
