# Empty dependencies file for scalpel_sched.
# This may be replaced when dependencies are built.
