# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("tensor")
subdirs("nn")
subdirs("profile")
subdirs("surgery")
subdirs("edge")
subdirs("sched")
subdirs("core")
subdirs("baselines")
subdirs("sim")
