file(REMOVE_RECURSE
  "libscalpel_sim.a"
)
