file(REMOVE_RECURSE
  "CMakeFiles/scalpel_sim.dir/fluid.cpp.o"
  "CMakeFiles/scalpel_sim.dir/fluid.cpp.o.d"
  "CMakeFiles/scalpel_sim.dir/runner.cpp.o"
  "CMakeFiles/scalpel_sim.dir/runner.cpp.o.d"
  "CMakeFiles/scalpel_sim.dir/simulator.cpp.o"
  "CMakeFiles/scalpel_sim.dir/simulator.cpp.o.d"
  "libscalpel_sim.a"
  "libscalpel_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalpel_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
