# Empty dependencies file for scalpel_sim.
# This may be replaced when dependencies are built.
